#include "harness/dualsim.hh"

#include <cstring>

#include "obs/telemetry.hh"
#include "util/logging.hh"
#include "util/wallguard.hh"

namespace dejavuzz::harness {

using swapmem::Memory;
using swapmem::SwapRuntime;
using swapmem::SwapSchedule;
using uarch::Core;
using uarch::TickEvents;

namespace {

/**
 * Tail hysteresis of a recorded trace store, in cycles. The seed
 * harness grew its per-cycle trace vector by 256 entries at a time,
 * so a diff pass outliving its sibling saw *empty* traces (structural
 * divergence => gates open) until the next 256-cycle boundary and no
 * trace (gates closed) beyond it. The preallocated store keeps that
 * boundary behaviour bit-identical.
 */
constexpr uint64_t kTraceTailQuantum = 256;

const ift::ControlTrace kEmptyTrace;

/**
 * True when every diffIFT gate of a tick that recorded @p mine would
 * resolve closed against @p sibling: the positional prefix of
 * @p sibling matches @p mine exactly. Extra sibling records beyond
 * mine's length are never consulted and cannot open a gate.
 */
bool
gatesAllClosed(const ift::ControlTrace &mine,
               const ift::ControlTrace &sibling)
{
    if (mine.size() > sibling.size())
        return false;
    // Word-wide prefix compare over the parallel sig/value arrays:
    // two memcmps replace the per-record loop on the hottest
    // comparison in the lockstep driver.
    size_t n = mine.size();
    return std::memcmp(mine.sigsData(), sibling.sigsData(),
                       n * sizeof(uint32_t)) == 0 &&
           std::memcmp(mine.valuesData(), sibling.valuesData(),
                       n * sizeof(uint64_t)) == 0;
}

/** Cycles after a divergence during which checkpoints are per-cycle
 *  (divergence clusters; per-cycle checkpoints make each further
 *  divergent cycle a single-tick redo instead of a replay). */
constexpr uint64_t kDivergenceHotWindow = 8;

} // namespace

const ift::ControlTrace *
DualSim::TraceStore::viewAt(uint64_t cycle) const
{
    if (cycle < used)
        return &per_cycle[cycle];
    uint64_t limit =
        used == 0
            ? 0
            : ((used - 1) / kTraceTailQuantum + 1) * kTraceTailQuantum;
    return cycle < limit ? &kEmptyTrace : nullptr;
}

DualSim::DualSim(const uarch::CoreConfig &config)
    : cfg_(config), lane0_(config), lane1_(config), ckpt_core_(config),
      fused0_(config), fused1_(config)
{}

void
DualSim::buildMemory(Memory &mem, const StimulusData &data,
                     bool flipped_secret) const
{
    auto secret = flipped_secret ? data.flippedSecret() : data.secret;
    mem.installSecret(secret.data(), secret.size());
    for (size_t i = 0; i < data.operands.size(); ++i)
        mem.setOperand(static_cast<unsigned>(i), data.operands[i]);
}

void
DualSim::startLane(LaneRun &lr, const StimulusData &data,
                   const SimOptions &options, bool flipped_secret)
{
    lr.result.reset();
    lr.lane.core.reset();
    lr.lane.mem.reset();
    buildMemory(lr.lane.mem, data, flipped_secret);
    uint64_t entry = lr.runtime.start(lr.lane.mem);
    if (lr.runtime.done()) {
        // Empty schedule: report only completion (no cycle counts,
        // hashes or sinks), matching the seed harness.
        lr.result.completed = true;
        lr.result.sinks.clear();
        lr.done = true;
        return;
    }
    lr.started = true;
    lr.lane.core.startSequence(entry);
    lr.result.packet_start.push_back(0);
    if (lr.lane.core.cycle() >= options.total_cycle_budget)
        lr.done = true;
}

/**
 * One cycle of one instance: arm the taint context, tick the core,
 * record the taint log and drive the swap runtime. Shared verbatim by
 * the single-pass, legacy 4-pass and lockstep drivers so the per-cycle
 * semantics cannot drift between strategies.
 */
void
DualSim::laneTick(LaneRun &lr, const SimOptions &options,
                  ift::IftMode mode, ift::ControlTrace *mine,
                  const ift::ControlTrace *other)
{
    // Cooperative batch/replay watchdog probe (one counter decrement
    // when no deadline is armed). Placing it on the per-cycle path
    // bounds even a single pathological simulation.
    util::WallGuard::check();

    ift::TaintCtx ctx;
    ctx.begin(mode, mine, other);
    TickEvents ev = lr.lane.core.tick(lr.lane.mem, ctx,
                                      &lr.result.trace);
    ++lr.packet_cycles;

    if (options.taint_log) {
        obs::SampledSpan taint_span(obs::Hist::ModuleTaintNs);
        lr.lane.core.appendTaintLog(lr.result.taint_log);
    }

    bool force_advance =
        lr.packet_cycles >= options.packet_cycle_budget;
    if (force_advance)
        lr.result.budget_exceeded = true;

    if (ev.swap_next || ev.trapped || force_advance) {
        uint64_t next_entry = lr.runtime.advance(lr.lane.mem);
        if (lr.runtime.done()) {
            lr.result.completed = true;
            lr.done = true;
            return;
        }
        lr.lane.core.flushICache();
        lr.lane.core.startSequence(next_entry);
        lr.result.packet_start.push_back(lr.lane.core.cycle());
        lr.packet_cycles = 0;
    }
    if (lr.lane.core.cycle() >= options.total_cycle_budget)
        lr.done = true;
}

void
DualSim::finishLane(LaneRun &lr, const SimOptions &options)
{
    lr.result.cycles = lr.lane.core.cycle();
    lr.result.contention = lr.lane.core.contention;
    lr.result.timing_hash = lr.lane.core.timingStateHash();
    lr.result.state_hash =
        fnv1a(lr.result.timing_hash,
              lr.lane.core.cachedDataHash(lr.lane.mem));
    if (options.sinks)
        lr.lane.core.enumSinks(lr.result.sinks);
    else
        lr.result.sinks.clear();
    obs::counterAdd(obs::Ctr::TaintTransitions,
                    lr.lane.core.taintTransitions() -
                        lr.taint_transitions_base);
}

void
DualSim::runOne(const SwapSchedule &schedule, const StimulusData &data,
                const SimOptions &options, bool flipped_secret,
                ift::IftMode mode, TraceStore *record,
                const TraceStore *sibling, Lane &lane, DutResult &out)
{
    LaneRun lr(lane, out, schedule);
    startLane(lr, data, options, flipped_secret);
    while (!lr.done) {
        uint64_t cycle = lane.core.cycle();
        ift::ControlTrace *mine =
            record != nullptr ? record->slot(cycle) : nullptr;
        const ift::ControlTrace *other =
            sibling != nullptr ? sibling->viewAt(cycle) : nullptr;
        laneTick(lr, options, mode, mine, other);
    }
    if (lr.started)
        finishLane(lr, options);
}

void
DualSim::runSingle(const SwapSchedule &schedule,
                   const StimulusData &data, const SimOptions &options,
                   DutResult &out)
{
    runOne(schedule, data, options, false, ift::IftMode::Off, nullptr,
           nullptr, lane0_, out);
    obs::counterAdd(obs::Ctr::Simulations);
}

DutResult
DualSim::runSingle(const SwapSchedule &schedule, const StimulusData &data,
                   const SimOptions &options)
{
    DutResult out;
    runSingle(schedule, data, options, out);
    return out;
}

void
DualSim::runDualFourPass(const SwapSchedule &schedule,
                         const StimulusData &data,
                         const SimOptions &options, DualResult &out)
{
    // Value pass: record control traces (taints gated off by the
    // missing sibling, results of the taint shadow discarded).
    SimOptions value_options = options;
    value_options.taint_log = false;
    value_options.sinks = false;
    store_a_.prepare(options.total_cycle_budget);
    store_b_.prepare(options.total_cycle_budget);
    runOne(schedule, data, value_options, false, ift::IftMode::DiffIFT,
           &store_a_, nullptr, lane0_, scratch_result_);
    runOne(schedule, data, value_options, true, ift::IftMode::DiffIFT,
           &store_b_, nullptr, lane1_, scratch_result_);
    // Diff pass: every control gate consults the sibling's trace.
    runOne(schedule, data, options, false, ift::IftMode::DiffIFT,
           nullptr, &store_b_, lane0_, out.dut0);
    runOne(schedule, data, options, true, ift::IftMode::DiffIFT,
           nullptr, &store_a_, lane1_, out.dut1);
    out.sim_passes = 4;
}

/**
 * Lockstep co-simulation: both instances advance through the same
 * cycle in one loop iteration. Lane 0 runs the *record sub-tick*
 * (gates optimistically closed — the correct resolution whenever the
 * two instances' control traces for the cycle match) and lane 1 the
 * *taint sub-tick* (gating against lane 0's just-recorded trace,
 * which is exact because control traces are taint-independent). When
 * the two traces differ positionally, lane 0's closed-gate assumption
 * was wrong: roll lane 0 back to the last checkpoint (pooled Core
 * copy + memory undo log), replay the confirmed-convergent cycles
 * with closed gates, and redo the divergent cycle against lane 1's
 * trace. Divergence clusters inside transient windows, so checkpoints
 * are sparse (every kCheckpointInterval cycles) until a divergence
 * and per-cycle while one is hot.
 */
void
DualSim::runDualLockstep(const SwapSchedule &schedule,
                         const StimulusData &data,
                         const SimOptions &options, DualResult &out,
                         bool allow_capture)
{
    store_a_.prepare(options.total_cycle_budget);
    store_b_.prepare(options.total_cycle_budget);

    LaneRun l0(lane0_, out.dut0, schedule);
    LaneRun l1(lane1_, out.dut1, schedule);
    startLane(l0, data, options, false);
    startLane(l1, data, options, true);
    lockstepLoop(l0, l1, options, allow_capture);
    out.sim_passes = 2;
}

void
DualSim::lockstepLoop(LaneRun &l0, LaneRun &l1, const SimOptions &options,
                      bool allow_capture)
{
    // Transient-packet index the fusion hook watches for; SIZE_MAX
    // disables capture (not armed, or already resuming a fused run).
    size_t fuse_at = allow_capture && fusion_sanitized_ != nullptr
                         ? fusion_sanitized_->transientIndex()
                         : SIZE_MAX;

    LaneMarks marks;
    SwapRuntime ckpt_runtime = l0.runtime;
    bool ckpt_valid = false;
    bool diverged_once = false;
    uint64_t last_divergence = 0;

    auto takeCheckpoint = [&]() {
        ckpt_core_ = l0.lane.core;
        ckpt_runtime = l0.runtime;
        if (ckpt_valid)
            l0.lane.mem.discardUndo();
        l0.lane.mem.beginUndo();
        marks.cycle = l0.lane.core.cycle();
        marks.packet_cycles = l0.packet_cycles;
        marks.secret_prot = l0.lane.mem.secretProt();
        marks.victim_supervisor = l0.lane.mem.victimSupervisor();
        marks.secret_swapped = l0.lane.mem.secretSwapped();
        marks.completed = l0.result.completed;
        marks.budget_exceeded = l0.result.budget_exceeded;
        marks.done = l0.done;
        marks.commits = l0.result.trace.commits.size();
        marks.squashes = l0.result.trace.squashes.size();
        marks.rob_io = l0.result.trace.rob_io.size();
        marks.taint_cycles = l0.result.taint_log.cycles.size();
        marks.packet_starts = l0.result.packet_start.size();
        ckpt_valid = true;
    };

    auto rollbackToCheckpoint = [&]() {
        l0.lane.core = ckpt_core_;
        l0.runtime = ckpt_runtime;
        l0.lane.mem.rollbackUndo();
        l0.lane.mem.setSecretProt(marks.secret_prot);
        l0.lane.mem.setVictimSupervisor(marks.victim_supervisor);
        if (!marks.secret_swapped)
            l0.lane.mem.clearSecretSwap();
        l0.lane.mem.beginUndo();
        l0.packet_cycles = marks.packet_cycles;
        l0.done = marks.done;
        l0.result.completed = marks.completed;
        l0.result.budget_exceeded = marks.budget_exceeded;
        l0.result.trace.commits.resize(marks.commits);
        l0.result.trace.squashes.resize(marks.squashes);
        l0.result.trace.rob_io.resize(marks.rob_io);
        l0.result.trace.cycles = marks.cycle;
        l0.result.taint_log.truncateCycles(marks.taint_cycles);
        l0.result.packet_start.resize(marks.packet_starts);
    };

    while (!l0.done && !l1.done) {
        uint64_t cycle = l0.lane.core.cycle(); // == lane 1's cycle
        bool hot = diverged_once &&
                   cycle - last_divergence <= kDivergenceHotWindow;
        if (hot)
            obs::counterAdd(obs::Ctr::HotCycles);
        if (!ckpt_valid || hot ||
            cycle - marks.cycle >= options.lockstep_checkpoint_interval) {
            takeCheckpoint();
            obs::counterAdd(obs::Ctr::Checkpoints);
        }

        // Record sub-tick: lane 0 with closed gates, trace recorded.
        ift::ControlTrace *rec0 = store_a_.slot(cycle);
        laneTick(l0, options, ift::IftMode::DiffIFT, rec0, nullptr);

        // Taint sub-tick: lane 1 gates against lane 0's trace for the
        // same cycle (and records its own for lane 0's redo).
        ift::ControlTrace *rec1 = store_b_.slot(cycle);
        laneTick(l1, options, ift::IftMode::DiffIFT, rec1, rec0);

        if (!gatesAllClosed(*rec0, *rec1)) {
            obs::ScopedSpan rollback_span(obs::Hist::RollbackNs);
            obs::counterAdd(obs::Ctr::Rollbacks);
            obs::counterAdd(obs::Ctr::RedoCycles,
                            cycle - marks.cycle + 1);
            diverged_once = true;
            last_divergence = cycle;
            rollbackToCheckpoint();
            // Replay the confirmed-convergent prefix: every replayed
            // cycle compared equal, so closed gates are exact.
            while (l0.lane.core.cycle() < cycle) {
                laneTick(l0, options, ift::IftMode::DiffIFT, nullptr,
                         nullptr);
            }
            // Redo the divergent cycle against the sibling's trace.
            laneTick(l0, options, ift::IftMode::DiffIFT, nullptr,
                     rec1);
        }

        // Fusion snapshot: both lanes' state at an iteration bottom
        // is confirmed (any divergence this cycle was just redone),
        // and the first time a swap cursor reaches the transient
        // packet it sits exactly at its start — the packet was
        // loaded at the end of this tick and none of its
        // instructions have been fetched yet.
        if (fuse_at != SIZE_MAX && !fusion_captured_ &&
            (l0.runtime.cursor() >= fuse_at ||
             l1.runtime.cursor() >= fuse_at)) {
            captureLane(fused0_, l0);
            captureLane(fused1_, l1);
            fusion_captured_ = true;
        }
    }
    if (ckpt_valid)
        l0.lane.mem.discardUndo();

    // Armed but the transient packet was never reached (a lane ran
    // out of budget while training): snapshot the exit state so the
    // fused run still skips the whole shared prefix.
    if (fuse_at != SIZE_MAX && !fusion_captured_) {
        captureLane(fused0_, l0);
        captureLane(fused1_, l1);
        fusion_captured_ = true;
    }

    // Solo tails: one instance outlived the other; it keeps gating
    // against the frozen sibling store, whose viewAt() tail semantics
    // match the legacy diff pass.
    while (!l0.done) {
        laneTick(l0, options, ift::IftMode::DiffIFT, nullptr,
                 store_b_.viewAt(l0.lane.core.cycle()));
    }
    while (!l1.done) {
        laneTick(l1, options, ift::IftMode::DiffIFT, nullptr,
                 store_a_.viewAt(l1.lane.core.cycle()));
    }

    if (l0.started)
        finishLane(l0, options);
    if (l1.started)
        finishLane(l1, options);
}

void
DualSim::captureLane(FusedCapture &cap, const LaneRun &lr)
{
    cap.core = lr.lane.core;
    cap.mem.copyFrom(lr.lane.mem);
    cap.result = lr.result;
    cap.packet_cycles = lr.packet_cycles;
    cap.cursor = lr.runtime.cursor();
    cap.runtime_started = lr.runtime.started();
    cap.started = lr.started;
    cap.done = lr.done;
}

void
DualSim::restoreLane(const FusedCapture &cap, LaneRun &lr,
                     const SimOptions &options, size_t transient_index)
{
    lr.lane.core = cap.core;
    lr.lane.mem.copyFrom(cap.mem);
    lr.result = cap.result;
    // The snapshot was taken under the capturing run's options; a
    // fused run without taint logging must look like a run that
    // never logged (standalone bit-identity).
    if (!options.taint_log)
        lr.result.taint_log.clear();
    lr.runtime.resumeAt(cap.cursor, cap.runtime_started);
    lr.packet_cycles = cap.packet_cycles;
    lr.taint_transitions_base = cap.core.taintTransitions();
    lr.started = cap.started;
    lr.done = cap.done;
    // The snapshot's swap region holds the packet the *capturing*
    // schedule loaded; once the cursor is at (or past) the transient
    // packet that differs from this lane's sanitized schedule, so
    // reload it — same zero-fill + load + secret-protection sequence
    // the original advance performed, now with sanitized words.
    if (cap.runtime_started && !lr.runtime.done() &&
        cap.cursor >= transient_index) {
        lr.runtime.reload(lr.lane.mem);
    }
}

void
DualSim::runFusedPhase3(const SimOptions &options, DualResult &out)
{
    dv_assert(fusion_captured_ && fusion_sanitized_ != nullptr);
    size_t transient_index = fusion_sanitized_->transientIndex();
    LaneRun l0(lane0_, out.dut0, *fusion_sanitized_);
    LaneRun l1(lane1_, out.dut1, *fusion_sanitized_);
    restoreLane(fused0_, l0, options, transient_index);
    restoreLane(fused1_, l1, options, transient_index);
    // Prefix cycles this fused resume did not have to re-simulate.
    obs::counterAdd(obs::Ctr::FusedLaneCycles,
                    fused0_.core.cycle() + fused1_.core.cycle());
    lockstepLoop(l0, l1, options, false);
    out.sim_passes = 1;
    obs::counterAdd(obs::Ctr::Simulations, out.sim_passes);
    fusion_captured_ = false;
    fusion_sanitized_ = nullptr;
}

void
DualSim::runDual(const SwapSchedule &schedule, const StimulusData &data,
                 const SimOptions &options, DualResult &out)
{
    // Fusion arming is one-shot: this run either captures a snapshot
    // (lockstep DiffIFT) or the arming lapses, so a stale sanitized
    // pointer can never be consulted by a later, unrelated run.
    bool allow_capture = fusion_armed_;
    fusion_armed_ = false;
    fusion_captured_ = false;
    switch (options.mode) {
      case ift::IftMode::Off:
      case ift::IftMode::CellIFT:
      case ift::IftMode::DiffIFTFN:
        // No cross-instance information needed: single pass each.
        runOne(schedule, data, options, false, options.mode, nullptr,
               nullptr, lane0_, out.dut0);
        runOne(schedule, data, options, true, options.mode, nullptr,
               nullptr, lane1_, out.dut1);
        out.sim_passes = 2;
        obs::counterAdd(obs::Ctr::Simulations, out.sim_passes);
        return;
      case ift::IftMode::DiffIFT:
        if (options.lockstep_diff)
            runDualLockstep(schedule, data, options, out, allow_capture);
        else
            runDualFourPass(schedule, data, options, out);
        obs::counterAdd(obs::Ctr::Simulations, out.sim_passes);
        return;
    }
    out.sim_passes = 0;
}

DualResult
DualSim::runDual(const SwapSchedule &schedule, const StimulusData &data,
                 const SimOptions &options)
{
    DualResult out;
    runDual(schedule, data, options, out);
    return out;
}

} // namespace dejavuzz::harness
