#include "harness/dualsim.hh"

#include "util/logging.hh"

namespace dejavuzz::harness {

using swapmem::Memory;
using swapmem::SwapRuntime;
using swapmem::SwapSchedule;
using uarch::Core;
using uarch::TickEvents;

DualSim::DualSim(const uarch::CoreConfig &config) : cfg_(config) {}

void
DualSim::buildMemory(Memory &mem, const StimulusData &data,
                     bool flipped_secret) const
{
    auto secret = flipped_secret ? data.flippedSecret() : data.secret;
    mem.installSecret(secret.data(), secret.size());
    for (size_t i = 0; i < data.operands.size(); ++i)
        mem.setOperand(static_cast<unsigned>(i), data.operands[i]);
}

DutResult
DualSim::runOne(const SwapSchedule &schedule, const StimulusData &data,
                const SimOptions &options, bool flipped_secret,
                ift::IftMode mode, TraceStore *record,
                const TraceStore *sibling)
{
    DutResult result;
    Core core(cfg_);
    Memory mem;
    buildMemory(mem, data, flipped_secret);

    SwapRuntime runtime(schedule);
    uint64_t entry = runtime.start(mem);
    if (runtime.done()) {
        result.completed = true;
        return result;
    }
    core.startSequence(entry);
    result.packet_start.push_back(0);

    ift::TaintCtx ctx;
    uint64_t packet_cycles = 0;

    while (core.cycle() < options.total_cycle_budget) {
        uint64_t cycle = core.cycle();
        ift::ControlTrace *mine = nullptr;
        const ift::ControlTrace *other = nullptr;
        if (record != nullptr) {
            if (record->per_cycle.size() <= cycle)
                record->per_cycle.resize(cycle + 256);
            mine = &record->per_cycle[cycle];
            mine->clear();
        }
        if (sibling != nullptr && cycle < sibling->per_cycle.size())
            other = &sibling->per_cycle[cycle];
        ctx.begin(mode, mine, other);

        TickEvents ev = core.tick(mem, ctx, &result.trace);
        ++packet_cycles;

        if (options.taint_log)
            core.appendTaintLog(result.taint_log);

        bool force_advance = packet_cycles >= options.packet_cycle_budget;
        if (force_advance)
            result.budget_exceeded = true;

        if (ev.swap_next || ev.trapped || force_advance) {
            uint64_t next_entry = runtime.advance(mem);
            if (runtime.done()) {
                result.completed = true;
                break;
            }
            core.flushICache();
            core.startSequence(next_entry);
            result.packet_start.push_back(core.cycle());
            packet_cycles = 0;
        }
    }

    result.cycles = core.cycle();
    result.contention = core.contention;
    result.timing_hash = core.timingStateHash();
    result.state_hash =
        fnv1a(result.timing_hash, core.cachedDataHash(mem));
    if (options.sinks)
        core.enumSinks(result.sinks);
    return result;
}

DutResult
DualSim::runSingle(const SwapSchedule &schedule, const StimulusData &data,
                   const SimOptions &options)
{
    return runOne(schedule, data, options, false, ift::IftMode::Off,
                  nullptr, nullptr);
}

DualResult
DualSim::runDual(const SwapSchedule &schedule, const StimulusData &data,
                 const SimOptions &options)
{
    DualResult result;
    switch (options.mode) {
      case ift::IftMode::Off:
      case ift::IftMode::CellIFT:
      case ift::IftMode::DiffIFTFN:
        // No cross-instance information needed: single pass each.
        result.dut0 = runOne(schedule, data, options, false,
                             options.mode, nullptr, nullptr);
        result.dut1 = runOne(schedule, data, options, true,
                             options.mode, nullptr, nullptr);
        return result;
      case ift::IftMode::DiffIFT: {
        // Value pass: record control traces (taints gated off by the
        // missing sibling, results of the taint shadow discarded).
        SimOptions value_options = options;
        value_options.taint_log = false;
        value_options.sinks = false;
        store_a_.reset(0);
        store_b_.reset(0);
        (void)runOne(schedule, data, value_options, false,
                     ift::IftMode::DiffIFT, &store_a_, nullptr);
        (void)runOne(schedule, data, value_options, true,
                     ift::IftMode::DiffIFT, &store_b_, nullptr);
        // Diff pass: every control gate consults the sibling's trace.
        result.dut0 = runOne(schedule, data, options, false,
                             ift::IftMode::DiffIFT, nullptr, &store_b_);
        result.dut1 = runOne(schedule, data, options, true,
                             ift::IftMode::DiffIFT, nullptr, &store_a_);
        return result;
      }
    }
    return result;
}

} // namespace dejavuzz::harness
