/**
 * @file
 * Stimulus data: the per-DUT dedicated-region contents (secret +
 * mutable operands) that accompany a swap schedule.
 */

#ifndef DEJAVUZZ_HARNESS_STIMULUS_HH
#define DEJAVUZZ_HARNESS_STIMULUS_HH

#include <array>
#include <cstdint>
#include <vector>

#include "swapmem/layout.hh"
#include "util/rng.hh"

namespace dejavuzz::harness {

/** Secret block plus operand slots for one test case. */
struct StimulusData
{
    std::array<uint8_t, swapmem::kSecretBytes> secret{};
    std::vector<uint64_t> operands;

    /**
     * The variant DUT's secret: every bit flipped (the paper's
     * false-negative mitigation - no bit can be accidentally equal).
     */
    std::array<uint8_t, swapmem::kSecretBytes>
    flippedSecret() const
    {
        auto flipped = secret;
        for (auto &byte : flipped)
            byte = static_cast<uint8_t>(~byte);
        return flipped;
    }

    static StimulusData
    random(Rng &rng, unsigned operand_slots = 8)
    {
        StimulusData data;
        for (auto &byte : data.secret)
            byte = static_cast<uint8_t>(rng.next());
        data.operands.resize(operand_slots);
        for (auto &operand : data.operands)
            operand = rng.next();
        return data;
    }
};

} // namespace dejavuzz::harness

#endif // DEJAVUZZ_HARNESS_STIMULUS_HH
