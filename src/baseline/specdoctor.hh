/**
 * @file
 * Re-implementation of SpecDoctor (Hur et al., CCS'22), the paper's
 * state-of-the-art baseline, on the shared simulation substrate.
 *
 * Faithful algorithmic properties (paper §2.3, §6):
 *  - single linear address space: training and transient code share
 *    one randomly-generated program (no swapMem);
 *  - multi-phase generation: random stimulus until a RoB rollback
 *    (transient-trigger), squashed-region payload replacement
 *    (secret-transmit), state-hash differential testing over the
 *    timing components (detection), then random decode generation
 *    (secret-receive);
 *  - generator constraints: memory accesses confined to mapped,
 *    aligned scratch addresses and no illegal opcodes (random crashes
 *    would break training), so access-fault / misalign / illegal
 *    windows are out of reach; windows containing backward jumps are
 *    discarded, so return windows are too;
 *  - payload replacement can invalidate complex windows (the W1/W2
 *    conflicts of paper Fig. 3);
 *  - no taint tracking: mutation is blind, and the oracle (hash
 *    difference) admits unexploitable leftovers as candidates.
 */

#ifndef DEJAVUZZ_BASELINE_SPECDOCTOR_HH
#define DEJAVUZZ_BASELINE_SPECDOCTOR_HH

#include <functional>
#include <vector>

#include "core/report.hh"
#include "core/seed.hh"
#include "harness/dualsim.hh"
#include "uarch/config.hh"
#include "util/rng.hh"

namespace dejavuzz::baseline {

/** A phase-3 candidate: a stimulus whose timing-state hashes differ. */
struct SpecDoctorCandidate
{
    swapmem::SwapSchedule schedule;
    harness::StimulusData data;
    /** Payload instruction range inside the program (for later
     *  sanitization studies). */
    size_t payload_begin = 0;
    size_t payload_end = 0;
    core::TriggerKind window = core::TriggerKind::BranchMispredict;
};

struct SpecDoctorStats
{
    uint64_t iterations = 0;
    uint64_t rollbacks = 0;
    uint64_t discarded_backward = 0;
    uint64_t payload_conflicts = 0;
    uint64_t candidates = 0;
    uint64_t confirmed = 0;
    uint64_t simulations = 0;
    std::array<uint64_t, core::kTriggerKinds> window_count{};
    std::array<uint64_t, core::kTriggerKinds> window_to{};
    uint64_t first_confirm_iteration = 0;
};

class SpecDoctor
{
  public:
    struct Options
    {
        uint64_t master_seed = 1;
        unsigned program_min = 150; ///< phase-1 stimulus size
        unsigned program_max = 200;
        unsigned decode_attempts = 2; ///< phase-4 tries per candidate
        harness::SimOptions sim;
    };

    SpecDoctor(const uarch::CoreConfig &config, const Options &options);

    /** Run @p count iterations. */
    void run(uint64_t count);

    const SpecDoctorStats &stats() const { return stats_; }
    const std::vector<SpecDoctorCandidate> &candidates() const
    {
        return candidates_;
    }

    /**
     * Optional scoring hook, invoked for every differential (phase-3)
     * evaluation: the Fig. 7 bench replays these under diffIFT to
     * measure taint coverage on equal footing.
     */
    std::function<void(const swapmem::SwapSchedule &,
                       const harness::StimulusData &)>
        replay_hook;

  private:
    void iterate();
    swapmem::SwapSchedule generateProgram(harness::StimulusData &data,
                                          size_t &program_len);
    /** Inject the secret payload over the squashed region. */
    bool injectPayload(swapmem::SwapSchedule &schedule,
                       uint64_t window_pc, size_t &begin, size_t &end);

    uarch::CoreConfig cfg_;
    Options options_;
    harness::DualSim sim_;
    Rng rng_;
    SpecDoctorStats stats_;
    std::vector<SpecDoctorCandidate> candidates_;
};

} // namespace dejavuzz::baseline

#endif // DEJAVUZZ_BASELINE_SPECDOCTOR_HH
