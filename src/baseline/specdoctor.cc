#include "baseline/specdoctor.hh"

#include "isa/builder.hh"
#include "swapmem/layout.hh"
#include "util/logging.hh"

namespace dejavuzz::baseline {

using core::TriggerKind;
using harness::DutResult;
using isa::Label;
using isa::Op;
using isa::ProgBuilder;
using namespace isa::reg;
using swapmem::PacketKind;
using swapmem::SwapPacket;
using swapmem::SwapSchedule;
using uarch::SquashCause;
using uarch::SquashRec;

namespace {

constexpr uint64_t kProbeBase = swapmem::kLeakArrayAddr + 0x100;

/** Map a squash record to the Table-3 window taxonomy. */
TriggerKind
classify(const SquashRec &squash)
{
    switch (squash.cause) {
      case SquashCause::Exception:
        switch (squash.exc) {
          case isa::ExcCause::LoadPageFault:
          case isa::ExcCause::StorePageFault:
            return TriggerKind::LoadPageFault;
          case isa::ExcCause::LoadAccessFault:
          case isa::ExcCause::StoreAccessFault:
            return TriggerKind::LoadAccessFault;
          case isa::ExcCause::LoadAddrMisaligned:
          case isa::ExcCause::StoreAddrMisaligned:
            return TriggerKind::LoadMisalign;
          case isa::ExcCause::IllegalInstr:
            return TriggerKind::IllegalInstr;
          default:
            return TriggerKind::LoadPageFault;
        }
      case SquashCause::MemDisambiguation:
        return TriggerKind::MemDisambiguation;
      case SquashCause::BranchMispredict:
        return TriggerKind::BranchMispredict;
      case SquashCause::JumpMispredict:
        return TriggerKind::IndirectMispredict;
      case SquashCause::ReturnMispredict:
        return TriggerKind::ReturnMispredict;
      default:
        return TriggerKind::BranchMispredict;
    }
}

} // namespace

SpecDoctor::SpecDoctor(const uarch::CoreConfig &config,
                       const Options &options)
    : cfg_(config), options_(options), sim_(config),
      rng_(options.master_seed)
{}

SwapSchedule
SpecDoctor::generateProgram(harness::StimulusData &data,
                            size_t &program_len)
{
    data = harness::StimulusData::random(rng_);

    ProgBuilder prog(swapmem::kSwapBase);
    // Fixed prologue: region bases plus a few random register values.
    prog.li(t3, swapmem::kScratchAddr);
    prog.li(s1, swapmem::kSecretAddr);
    prog.li(t2, kProbeBase);
    prog.li(s2, swapmem::kUnmappedAddr);
    for (uint8_t reg = 19; reg <= 22; ++reg) // s3..s6 randoms
        prog.li(reg, rng_.below(256));

    unsigned count =
        options_.program_min +
        static_cast<unsigned>(
            rng_.below(options_.program_max - options_.program_min));

    for (unsigned i = 0; i < count; ++i) {
        unsigned pick = static_cast<unsigned>(rng_.below(100));
        auto rd = static_cast<uint8_t>(5 + rng_.below(3));   // t0..t2'
        auto rs1 = static_cast<uint8_t>(19 + rng_.below(4)); // s3..s6
        auto rs2 = static_cast<uint8_t>(19 + rng_.below(4));
        if (pick < 46) {
            static constexpr Op kArith[6] = {Op::ADD, Op::SUB, Op::XOR,
                                             Op::OR, Op::AND, Op::SLT};
            prog.emit(kArith[rng_.below(6)], rd, rs1, rs2, 0);
        } else if (pick < 54) {
            prog.emit(Op::MUL, rd, rs1, rs2, 0);
        } else if (pick < 58) {
            // Computed-address store followed by a nearby fixed load:
            // memory-disambiguation speculation material.
            prog.emit(Op::MUL, t1, rs1, rs2, 0);
            prog.andi(t1, t1, 0x18);
            prog.add(t1, t1, t3);
            prog.sd(rs1, t1, 0);
            prog.ld(rd, t3, 8);
        } else if (pick < 70) {
            // Aligned scratch accesses only: the generator avoids
            // crashing faults (no access-fault/misalign windows).
            int64_t off = static_cast<int64_t>(8 * rng_.below(32));
            if (rng_.chance(1, 3))
                prog.sd(rs1, t3, off);
            else
                prog.ld(rd, t3, off);
        } else if (pick < 84) {
            // Forward conditional branch.
            Label target = prog.newLabel();
            static constexpr Op kBr[4] = {Op::BEQ, Op::BNE, Op::BLT,
                                          Op::BGEU};
            prog.branch(kBr[rng_.below(4)], rs1, rs2, target);
            unsigned skip = 1 + static_cast<unsigned>(rng_.below(4));
            for (unsigned k = 0; k < skip; ++k)
                prog.nop();
            prog.bind(target);
        } else if (pick < 90) {
            // Forward indirect jump (li is two instructions here).
            uint64_t target = prog.here() + 16 + 4 * rng_.below(4);
            prog.li(t5, target);
            prog.jalr(0, t5, 0);
            prog.padTo(target);
        } else if (pick < 95) {
            // Secret access: architecturally allowed in this phase;
            // leaves the secret value resting in the d-cache (the
            // false-positive source).
            prog.ld(rd, s1, static_cast<int64_t>(8 * rng_.below(4)));
        } else {
            // Unmapped access: page-fault window material.
            prog.ld(rd, s2, 0);
        }
    }
    prog.swapnext();
    program_len = prog.size();

    SwapSchedule schedule;
    SwapPacket packet;
    packet.label = "specdoctor_program";
    packet.kind = PacketKind::Transient;
    packet.instrs = prog.finish();
    schedule.packets.push_back(std::move(packet));
    schedule.transient_prot = swapmem::SecretProt::Open;
    return schedule;
}

bool
SpecDoctor::injectPayload(SwapSchedule &schedule, uint64_t window_pc,
                          size_t &begin, size_t &end)
{
    auto &instrs = schedule.packets[0].instrs;
    size_t index = (window_pc - swapmem::kSwapBase) / 4;
    if (index >= instrs.size())
        return false;
    // The payload: secret access + d-cache encode, blindly overwriting
    // whatever instructions occupied the squashed region (possibly
    // training or condition setup - the W1/W2 conflicts).
    ProgBuilder payload(window_pc);
    payload.ld(s0, s1, 0);
    payload.emit(Op::SRLI, t4, s0, 0,
                 static_cast<int64_t>(rng_.below(8)));
    payload.andi(t4, t4, 1);
    payload.slli(t4, t4, 6);
    payload.add(t4, t4, t2);
    payload.ld(s3, t4, 0);
    const auto &body = payload.finish();
    if (index + body.size() + 1 >= instrs.size())
        return false;
    for (size_t i = 0; i < body.size(); ++i)
        instrs[index + i] = body[i];
    begin = index;
    end = index + body.size();
    return true;
}

void
SpecDoctor::iterate()
{
    ++stats_.iterations;

    // Phase transient-trigger: random stimulus, look for a rollback.
    harness::StimulusData data;
    size_t program_len = 0;
    SwapSchedule schedule = generateProgram(data, program_len);
    DutResult first = sim_.runSingle(schedule, data, options_.sim);
    ++stats_.simulations;

    const SquashRec *window = nullptr;
    for (const auto &squash : first.trace.squashes) {
        if (squash.flushed == 0 || squash.transient_executed == 0)
            continue;
        // Needs room for the payload and a meaningful training prefix
        // (the preceding program is what trained the trigger).
        size_t index = (squash.spec_pc - swapmem::kSwapBase) / 4;
        if (index < 100 || index + 10 >= program_len)
            continue;
        window = &squash;
        break;
    }
    if (window == nullptr)
        return;

    // Windows containing backward jumps are discarded (paper §3.1).
    if (window->cause == SquashCause::ReturnMispredict ||
        window->spec_pc < window->pc) {
        ++stats_.discarded_backward;
        return;
    }

    ++stats_.rollbacks;
    TriggerKind kind = classify(*window);
    auto kind_index = static_cast<unsigned>(kind);
    ++stats_.window_count[kind_index];
    // Everything executed before the trigger is training overhead.
    stats_.window_to[kind_index] +=
        (window->pc - swapmem::kSwapBase) / 4;

    // Phase secret-transmit: overwrite the squashed region.
    size_t payload_begin = 0;
    size_t payload_end = 0;
    uint64_t window_pc = window->spec_pc;
    uint64_t trigger_pc = window->pc;
    SquashCause want_cause = window->cause;
    if (!injectPayload(schedule, window_pc, payload_begin, payload_end))
        return;

    DutResult retry = sim_.runSingle(schedule, data, options_.sim);
    ++stats_.simulations;
    bool still_triggered = false;
    for (const auto &squash : retry.trace.squashes) {
        if (squash.cause == want_cause && squash.pc == trigger_pc &&
            squash.transient_executed > 0) {
            still_triggered = true;
            break;
        }
    }
    if (!still_triggered) {
        // Payload replacement broke the training/trigger semantics.
        ++stats_.payload_conflicts;
        return;
    }

    // Detection: differential run, state hashes over the timing
    // components (including the data they hold).
    harness::SimOptions dual_options = options_.sim;
    dual_options.mode = ift::IftMode::Off;
    auto dual = sim_.runDual(schedule, data, dual_options);
    stats_.simulations += 2;
    if (replay_hook)
        replay_hook(schedule, data);
    if (dual.dut0.state_hash == dual.dut1.state_hash)
        return;

    ++stats_.candidates;
    SpecDoctorCandidate candidate;
    candidate.schedule = schedule;
    candidate.data = data;
    candidate.payload_begin = payload_begin;
    candidate.payload_end = payload_end;
    candidate.window = kind;
    candidates_.push_back(std::move(candidate));

    // Phase secret-receive: append random instructions and hope they
    // decode the secret into an architectural timing difference.
    for (unsigned attempt = 0; attempt < options_.decode_attempts;
         ++attempt) {
        SwapSchedule probe = schedule;
        auto &instrs = probe.packets[0].instrs;
        // Replace the trailing SWAPNEXT with a random decode block.
        instrs.pop_back();
        ProgBuilder decoder(swapmem::kSwapBase + 4 * instrs.size());
        for (unsigned i = 0; i < 8; ++i) {
            auto rd = static_cast<uint8_t>(5 + rng_.below(3));
            if (rng_.chance(1, 3)) {
                decoder.ld(rd, t3,
                           static_cast<int64_t>(8 * rng_.below(32)));
            } else {
                decoder.add(rd, rd, rd);
            }
        }
        decoder.swapnext();
        for (const auto &instr : decoder.finish())
            instrs.push_back(instr);

        auto decode_run = sim_.runDual(probe, data, dual_options);
        stats_.simulations += 2;
        // Confirmed only when the decode block's own timing differs.
        size_t commits0 = decode_run.dut0.trace.commits.size();
        size_t commits1 = decode_run.dut1.trace.commits.size();
        if (commits0 == commits1 &&
            decode_run.dut0.cycles != decode_run.dut1.cycles) {
            ++stats_.confirmed;
            if (stats_.first_confirm_iteration == 0)
                stats_.first_confirm_iteration = stats_.iterations;
            break;
        }
    }
}

void
SpecDoctor::run(uint64_t count)
{
    for (uint64_t i = 0; i < count; ++i)
        iterate();
}

} // namespace dejavuzz::baseline
