#include "uarch/core.hh"

#include "isa/encoding.hh"
#include "obs/telemetry.hh"
#include "util/logging.hh"

namespace dejavuzz::uarch {

using ift::TV;
using isa::ExcCause;
using isa::Instr;
using isa::Op;
using isa::OpClass;
using swapmem::AccessKind;
using swapmem::Memory;

namespace {

/** Effective physical address width of the load unit (B1 truncation). */
constexpr unsigned kLoadUnitAddrBits = 18;

bool
rangesOverlap(uint64_t a, unsigned a_bytes, uint64_t b, unsigned b_bytes)
{
    return a < b + b_bytes && b < a + a_bytes;
}

// Taint contributions of the scanned containers, matching the legacy
// moduleTaintStats scan exactly (see ift/taintacct.hh): every write to
// a counted field is wrapped in a before/after pair at the write site.

ift::TaintContrib
robContrib(const RobEntry &entry)
{
    // regs counts any-field taint (meta|result|addr); bits counts only
    // meta+result, mirroring the original scan's asymmetry.
    uint64_t any = entry.meta.t | entry.result.t | entry.addr.t;
    return {any != 0 ? 1u : 0u,
            static_cast<uint64_t>(popcount64(entry.meta.t)) +
                static_cast<uint64_t>(popcount64(entry.result.t))};
}

ift::TaintContrib
lqContrib(const LqEntry &entry)
{
    // Counted regardless of entry.valid (scan quirk kept).
    return {entry.addr.t != 0 ? 1u : 0u,
            static_cast<uint64_t>(popcount64(entry.addr.t))};
}

ift::TaintContrib
sqContrib(const SqEntry &entry)
{
    return {(entry.addr.t | entry.data.t) != 0 ? 1u : 0u,
            static_cast<uint64_t>(popcount64(entry.addr.t)) +
                static_cast<uint64_t>(popcount64(entry.data.t))};
}

ift::TaintContrib
prfContrib(const TV &value)
{
    return {value.t != 0 ? 1u : 0u,
            static_cast<uint64_t>(popcount64(value.t))};
}

/** Bulk adoption after a wholesale recompute (RoB-rollback taint). */
void
adoptBulk(ift::TaintAcct &acct, uint32_t regs, uint64_t bits)
{
    if (acct.regs != regs || acct.bits != bits)
        ++acct.transitions;
    acct.regs = regs;
    acct.bits = bits;
}

} // namespace

const char *
squashCauseName(SquashCause cause)
{
    switch (cause) {
      case SquashCause::None: return "none";
      case SquashCause::BranchMispredict: return "branch-mispredict";
      case SquashCause::JumpMispredict: return "jump-mispredict";
      case SquashCause::ReturnMispredict: return "return-mispredict";
      case SquashCause::MemDisambiguation: return "mem-disambiguation";
      case SquashCause::Exception: return "exception";
      case SquashCause::PrivReturn: return "priv-return";
    }
    return "?";
}

Core::Core(const CoreConfig &config)
    : cfg(config),
      bht(config.bht_entries),
      btb(config.btb_entries),
      faubtb(config.faubtb_entries),
      ras(config.ras_entries),
      loop(config.loop_entries),
      indpred(config.ind_entries),
      icache_(config.icache_lines, config.icache_miss_latency),
      dcache(config.dcache_lines, config.mshr_entries,
             config.lfb_entries, config.dcache_hit_latency,
             config.dcache_miss_latency),
      dtlb(config.dtlb_entries, "dtlb"),
      l2tlb(config.l2tlb_entries, "l2tlb")
{
    dv_assert(cfg.prf_entries > 64);
    reset();
}

void
Core::reset()
{
    priv = isa::Priv::U;
    contention = ContentionCounters{};

    fetchq.clear();
    rob.assign(cfg.rob_entries, RobEntry{});
    rob_head = 0;
    rob_count = 0;
    rename_taint.fill(0);
    prf.assign(cfg.prf_entries, TV{});
    prf_busy.assign(cfg.prf_entries, 0);
    prf_alloc.assign(cfg.prf_entries, 0);
    prf_free.clear();
    lq.assign(cfg.lq_entries, LqEntry{});
    sq.assign(cfg.sq_entries, SqEntry{});
    load_wait.assign(256, 0);
    // Identity-map the 64 architectural registers (32 int + 32 fp)
    // onto the first physical registers; the rest go to the free list.
    for (unsigned i = 0; i < 64; ++i) {
        rename_map[i] = static_cast<uint16_t>(i);
        prf_alloc[i] = 1;
    }
    for (unsigned i = cfg.prf_entries; i-- > 64;)
        prf_free.push_back(static_cast<uint16_t>(i));
    pc = ift::clean(swapmem::kSwapBase);

    bht.reset();
    btb.reset();
    faubtb.reset();
    ras.reset();
    loop.reset();
    indpred.reset();
    icache_.reset();
    dcache.reset();
    dtlb.reset();
    l2tlb.reset();

    fdiv_busy_until = 0;
    div_busy_until = 0;
    fdiv_latch = TV{};
    rob_tail_taint_ = TV{};

    cycle_ = 0;
    seq_counter_ = 1;
    alu_used_ = 0;
    mem_used_ = 0;
    wb_used_ = 0;
    wb_pipeline_claimed_ = false;
    trap_pending_ = false;
    trap_countdown_ = 0;
    trap_cause_ = isa::ExcCause::None;
    trap_pc_ = 0;
    trap_taint_ = TV{};
    trap_open_cycle_ = 0;
    decode_blocked_ = false;
    btb_correction_ = BtbCorrection{};
    enq_this_cycle_ = 0;
    commit_this_cycle_ = 0;

    // All counted containers were just reassigned to clean defaults.
    prf_acct_.reset();
    rob_acct_.reset();
    lq_acct_.reset();
    sq_acct_.reset();
    fetchq_taint_slots_ = 0;
    rename_taint_regs_ = 0;
}

unsigned
Core::robSlot(unsigned offset) const
{
    return (rob_head + offset) % cfg.rob_entries;
}

RobEntry *
Core::robHeadEntry()
{
    return rob_count > 0 ? &rob[rob_head] : nullptr;
}

TV
Core::archReg(unsigned index) const
{
    return prf[rename_map[index & 63]];
}

void
Core::startSequence(uint64_t entry)
{
    // Architectural redirect from the swap runtime: hard flush, no
    // taint (the runtime is outside the DUT).
    for (auto &e : rob) {
        if (e.valid)
            rollbackEntry(e);
    }
    rob_head = 0;
    rob_count = 0;
    fetchq.clear();
    fetchq_taint_slots_ = 0;
    for (auto &e : lq)
        e.valid = false;
    for (auto &e : sq)
        e.valid = false;
    decode_blocked_ = false;
    trap_pending_ = false;
    btb_correction_.valid = false;
    ras.recover(false);
    pc = ift::clean(entry);
}

// --- squash machinery ----------------------------------------------------

void
Core::rollbackEntry(RobEntry &entry)
{
    if (entry.has_rd) {
        rename_map[entry.rd_slot] = entry.prf_old;
        // The freed physical register keeps its value and taint: the
        // residue a liveness analysis must recognise as dead.
        prf_busy[entry.prf_idx] = 0;
        prf_alloc[entry.prf_idx] = 0;
        prf_free.push_back(entry.prf_idx);
    }
    if (entry.lq >= 0)
        lq[entry.lq].valid = false;
    if (entry.sq >= 0)
        sq[entry.sq].valid = false;
    entry.valid = false;
}

void
Core::applyRollbackTaint(TV squash_taint, ift::TaintCtx &ctx)
{
    // The Fig. 2 RoB-rollback policy: the moving tail pointer is a
    // tainted enable on every entry's field registers. Under CellIFT
    // the gate is unconditionally open; under diffIFT it only opens
    // when the squash actually diverges between the secret variants.
    bool gate = ctx.gate(ift::sigId(kModRob, 1), 1);
    if (squash_taint.t == 0 || !gate)
        return;
    // The tail pointer register is now tainted and - since the policy
    // never clears taints - stays tainted: every later enqueue has a
    // tainted enable (the CellIFT taint-explosion mechanism).
    rob_tail_taint_.t = ~0ULL;
    for (auto &entry : rob)
        entry.meta.t = ~0ULL;
    for (auto &taint : rename_taint)
        taint = 1;
    for (auto &e : lq)
        e.addr.t = ~0ULL;
    for (auto &e : sq) {
        e.addr.t = ~0ULL;
        e.data.t = ~0ULL;
    }
    for (auto &slot : fetchq)
        slot.pc_taint = 1;
    pc.t = ~0ULL;

    // Bulk adoption: the rollback just rewrote whole containers, so
    // recompute their populations in closed form instead of wrapping
    // each element write. This path only runs on an actually-diverging
    // squash, never in the steady state.
    {
        uint64_t rob_bits = 0;
        for (const auto &entry : rob) {
            rob_bits +=
                64 + static_cast<uint64_t>(popcount64(entry.result.t));
        }
        adoptBulk(rob_acct_, static_cast<uint32_t>(rob.size()),
                  rob_bits);
    }
    rename_taint_regs_ = 64;
    adoptBulk(lq_acct_, static_cast<uint32_t>(lq.size()),
              64 * static_cast<uint64_t>(lq.size()));
    adoptBulk(sq_acct_, static_cast<uint32_t>(sq.size()),
              128 * static_cast<uint64_t>(sq.size()));
    fetchq_taint_slots_ = static_cast<uint32_t>(fetchq.size());
}

void
Core::squashYounger(uint64_t from_seq, bool inclusive, TV redirect,
                    TV squash_taint, SquashCause cause, ExcCause exc,
                    uint64_t squash_pc, uint64_t spec_pc,
                    uint32_t open_cycle, ift::TaintCtx &ctx,
                    TraceLog *trace)
{
    SquashRec rec;
    rec.cycle = static_cast<uint32_t>(cycle_);
    rec.open_cycle = open_cycle;
    rec.cause = cause;
    rec.exc = exc;
    rec.pc = squash_pc;
    rec.spec_pc = spec_pc;

    // Tainted state flushed by the rollback taints the tail-pointer
    // movement itself (the paper's §2.2 RoB example): record it so the
    // rollback control-taint policy sees a tainted enable.
    uint64_t flushed_taint = 0;
    while (rob_count > 0) {
        unsigned idx = robSlot(rob_count - 1);
        RobEntry &entry = rob[idx];
        bool victim = entry.seq > from_seq ||
                      (inclusive && entry.seq == from_seq);
        if (!victim)
            break;
        ++rec.flushed;
        if (entry.stage >= 1)
            ++rec.transient_executed;
        flushed_taint |= entry.result.t | entry.addr.t | entry.meta.t;
        rollbackEntry(entry);
        --rob_count;
    }
    if (flushed_taint != 0)
        squash_taint.t |= 1;
    fetchq.clear();
    fetchq_taint_slots_ = 0;
    decode_blocked_ = false;

    // RAS recovery (B2: only TOS + top entry restored).
    ras.recover(cfg.bug_b2_ras_partial_restore);

    // Fixed-B4 cores abandon speculative fetch refills on squash.
    if (!cfg.bug_b4_fetch_refill_preempt)
        icache_.cancelRefill();

    applyRollbackTaint(squash_taint, ctx);

    pc = redirect;
    bool gate = ctx.gate(ift::sigId(kModFrontend, 1), 1);
    if (squash_taint.t != 0 && gate)
        pc.t |= ~0ULL;

    if (trace != nullptr)
        trace->squashes.push_back(rec);
}

void
Core::flushAll(TV redirect, TV squash_taint, SquashCause cause,
               ExcCause exc, uint64_t squash_pc, ift::TaintCtx &ctx,
               TraceLog *trace)
{
    squashYounger(0, true, redirect, squash_taint, cause, exc,
                  squash_pc, squash_pc + 4, trap_open_cycle_, ctx,
                  trace);
}

// --- commit ---------------------------------------------------------------

void
Core::commitPredictorUpdate(RobEntry &entry)
{
    const Instr &instr = entry.instr;
    bool cond_taint = entry.actual_target.t != 0;

    if (isa::isBranch(instr.op)) {
        bht.update(entry.pc, entry.actual_taken, cond_taint);
        if (!cfg.speculative_predictor_update) {
            if (loop.enabled())
                loop.update(entry.pc, entry.actual_taken, cond_taint);
            if (entry.actual_taken)
                btb.update(entry.pc, entry.actual_target);
        }
    } else if (instr.op == Op::JALR) {
        if (!cfg.speculative_predictor_update) {
            indpred.update(entry.pc, entry.actual_target);
            btb.update(entry.pc, entry.actual_target);
        }
    }

    // Committed RAS mirror.
    if (isa::isCall(instr))
        ras.commitPush(ift::clean(entry.pc + 4));
    else if (isa::isRet(instr))
        ras.commitPop();
}

TickEvents
Core::phaseCommit(Memory &mem, ift::TaintCtx &ctx, TraceLog *trace)
{
    TickEvents ev;
    for (unsigned n = 0; n < cfg.commit_width; ++n) {
        if (rob_count == 0 || trap_pending_)
            break;
        RobEntry &head = rob[rob_head];
        if (!head.valid || head.stage != 2)
            break;

        if (head.exc != ExcCause::None) {
            // Exception reaches the head: the flush is not instant -
            // the RoB unwind takes trap_latency cycles during which
            // younger instructions keep executing transiently.
            trap_pending_ = true;
            trap_countdown_ = cfg.trap_latency;
            trap_cause_ = head.exc;
            trap_pc_ = head.pc;
            trap_taint_ = TV{1, (head.badaddr.t | head.result.t) != 0
                                    ? 1ULL : 0ULL};
            trap_open_cycle_ = head.dispatch_cycle;
            break;
        }

        if (head.instr.op == Op::SWAPNEXT) {
            ev.swap_next = true;
        }

        // A privileged return commits: everything younger in the RoB
        // was fetched and (partially) executed under the stale M
        // privilege, so it must be flushed - that flush is the
        // privilege-transition transient window.
        bool priv_return =
            (head.instr.op == Op::MRET || head.instr.op == Op::SRET) &&
            priv == isa::Priv::M;
        uint64_t ret_pc = head.pc;
        uint64_t ret_seq = head.seq;
        uint32_t ret_open = head.dispatch_cycle;

        commitPredictorUpdate(head);

        if (head.sq >= 0 && sq[head.sq].valid) {
            // Write-through store commit.
            SqEntry &store = sq[head.sq];
            mem.write(store.addr.v, store.bytes, store.data);
            dcache.storeUpdate(store.addr.v, store.data);
            store.valid = false;
        }
        if (head.lq >= 0)
            lq[head.lq].valid = false;

        if (head.has_rd) {
            prf_alloc[head.prf_old] = 0;
            prf_free.push_back(head.prf_old);
        }

        if (trace != nullptr) {
            trace->commits.push_back(CommitRec{
                static_cast<uint32_t>(cycle_), head.pc, head.instr.op});
        }
        ++commit_this_cycle_;

        head.valid = false;
        rob_head = (rob_head + 1) % cfg.rob_entries;
        --rob_count;

        if (priv_return) {
            priv = isa::Priv::U;
            squashYounger(ret_seq, false, ift::clean(ret_pc + 4),
                          TV{1, 0}, SquashCause::PrivReturn,
                          isa::ExcCause::None, ret_pc, ret_pc + 4,
                          ret_open, ctx, trace);
            break;
        }

        if (ev.swap_next)
            break;
    }
    return ev;
}

// --- execute ----------------------------------------------------------------

void
Core::resolveControl(RobEntry &entry, ift::TaintCtx &ctx,
                     TraceLog *trace)
{
    entry.resolved = true;
    const Instr &instr = entry.instr;
    bool mispredict = false;
    SquashCause cause = SquashCause::BranchMispredict;

    if (isa::isBranch(instr.op)) {
        mispredict = entry.pred_taken != entry.actual_taken;
        cause = SquashCause::BranchMispredict;
        if (cfg.speculative_predictor_update) {
            if (loop.enabled()) {
                loop.update(entry.pc, entry.actual_taken,
                            entry.actual_target.t != 0);
            }
            if (entry.actual_taken && faubtb.entries() > 0)
                faubtb.update(entry.pc, entry.actual_target);
        }
    } else if (instr.op == Op::JALR) {
        mispredict = entry.pred_target.v != entry.actual_target.v;
        cause = isa::isRet(instr) ? SquashCause::ReturnMispredict
                                  : SquashCause::JumpMispredict;
        if (cfg.speculative_predictor_update) {
            indpred.update(entry.pc, entry.actual_target);
            // The BTB write is staged one cycle; if an exception flush
            // lands in that cycle the B3 race misdirects it.
            btb_correction_.valid = true;
            btb_correction_.pc = entry.pc;
            btb_correction_.target = entry.actual_target;
        }
    } else {
        return; // jal: target known at fetch, never mispredicts
    }

    if (!mispredict)
        return;

    TV squash_taint{1, entry.actual_target.t != 0 ? 1ULL : 0ULL};
    uint64_t spec_pc =
        entry.pred_taken ? entry.pred_target.v : entry.pc + 4;
    squashYounger(entry.seq, false, entry.actual_target, squash_taint,
                  cause, ExcCause::None, entry.pc, spec_pc,
                  entry.dispatch_cycle, ctx, trace);
}

void
Core::finishLoad(RobEntry &entry, Memory &mem, ift::TaintCtx &ctx)
{
    unsigned bytes = entry.bytes;
    TV data;
    if (entry.forwarded) {
        data = entry.result; // captured from the store queue at issue
    } else if (entry.exc != ExcCause::None) {
        // Faulting load: transient forwarding path (Meltdown family).
        data = ift::clean(0);
        if (cfg.meltdown_forwarding) {
            uint64_t eff = entry.addr.v;
            if (cfg.bug_b1_addr_truncation) {
                // B1: the load-unit address wire silently truncates
                // the high (masked) bits, sampling a valid address.
                eff = entry.addr.v & maskLow(kLoadUnitAddrBits);
            }
            if (mem.inRange(eff) && dcache.hit(eff))
                data = mem.read(eff, bytes);
        }
    } else {
        data = mem.read(entry.addr.v, bytes);
    }

    if (entry.exc == ExcCause::None && isa::loadSigned(entry.instr.op))
        data = ift::sextCell(data, bytes * 8);
    else if (entry.exc == ExcCause::None && entry.instr.op != Op::FLD)
        data = ift::truncCell(data, bytes * 8);

    // Table 1 memory-read policy: a tainted (and diverging) address
    // taints the whole loaded value.
    if (ctx.memReadGate(ift::sigId(kModLsu, 2), entry.addr))
        data.t = ~0ULL;

    {
        ift::TaintContrib before = robContrib(entry);
        entry.result = data;
        rob_acct_.apply(before, robContrib(entry));
    }
    if (entry.has_rd) {
        ift::TaintContrib before = prfContrib(prf[entry.prf_idx]);
        prf[entry.prf_idx] = data;
        prf_acct_.apply(before, prfContrib(prf[entry.prf_idx]));
        prf_busy[entry.prf_idx] = 0;
    }
    if (entry.lq >= 0)
        lq[entry.lq].done = true;
    entry.stage = 2;
}

void
Core::phaseExecute(Memory &mem, ift::TaintCtx &ctx, TraceLog *trace)
{
    for (unsigned n = 0; n < rob_count; ++n) {
        RobEntry &entry = rob[robSlot(n)];
        if (!entry.valid || entry.stage != 1)
            continue;

        if (entry.load_phase != LoadPhase::None) {
            switch (entry.load_phase) {
              case LoadPhase::Tlb:
                if (entry.remaining > 0) {
                    --entry.remaining;
                    break;
                }
                // Address translated: hit/miss decision.
                if (entry.forwarded || entry.exc != ExcCause::None ||
                    dcache.hit(entry.addr.v)) {
                    entry.load_phase = LoadPhase::Cache;
                    entry.remaining = dcache.hitLatency();
                } else {
                    bool addr_ctl = ctx.memReadGate(
                        ift::sigId(kModMshr, 1), entry.addr);
                    int mshr = dcache.allocMshr(entry.addr, addr_ctl);
                    if (mshr >= 0) {
                        entry.mshr_idx = mshr;
                        entry.load_phase = LoadPhase::Mshr;
                    } else {
                        contention.mem_port_wait += 1; // retry
                    }
                }
                break;
              case LoadPhase::Cache:
                if (entry.remaining > 0) {
                    --entry.remaining;
                    break;
                }
                entry.load_phase = LoadPhase::Wb;
                [[fallthrough]];
              case LoadPhase::Wb: {
                bool via_mshr = entry.mshr_idx >= 0;
                bool port_free;
                if (!via_mshr) {
                    port_free = wb_used_ < cfg.load_wb_ports;
                    if (port_free)
                        wb_pipeline_claimed_ = true;
                } else if (cfg.bug_b5_shared_load_wb) {
                    // B5: queue completions share the pipeline port
                    // and lose to it.
                    port_free = wb_used_ < cfg.load_wb_ports &&
                                !wb_pipeline_claimed_;
                } else {
                    port_free = true; // dedicated queue port
                }
                if (!port_free) {
                    contention.load_wb_conflict += 1;
                    break;
                }
                if (!via_mshr || cfg.bug_b5_shared_load_wb)
                    ++wb_used_;
                finishLoad(entry, mem, ctx);
                entry.load_phase = LoadPhase::None;
                break;
              }
              case LoadPhase::Mshr:
                if (dcache.mshrDone(entry.mshr_idx))
                    entry.load_phase = LoadPhase::Wb;
                break;
              default:
                break;
            }
            continue;
        }

        if (entry.remaining > 0) {
            --entry.remaining;
            continue;
        }

        // Writeback.
        if (entry.has_rd) {
            ift::TaintContrib before = prfContrib(prf[entry.prf_idx]);
            prf[entry.prf_idx] = entry.result;
            prf_acct_.apply(before, prfContrib(prf[entry.prf_idx]));
            prf_busy[entry.prf_idx] = 0;
        }
        entry.stage = 2;
        if (entry.is_ctrl)
            resolveControl(entry, ctx, trace);
        if (!entry.valid)
            break; // resolveControl squashed from this entry onward
    }
}

// --- issue -------------------------------------------------------------------

bool
Core::issueLoad(RobEntry &entry, Memory &mem, ift::TaintCtx &ctx)
{
    (void)ctx; // address-taint gating happens at completion
    LqEntry &lqe = lq[entry.lq];
    TV rs1 = entry.src1_valid ? prf[entry.src1_prf] : ift::clean(0);
    TV addr = execEffAddr(entry.instr, rs1);
    unsigned bytes = entry.bytes;

    // Memory-dependence scan over older stores: find the youngest
    // known-address match for forwarding, and note any older store
    // whose address is still unresolved (speculation point).
    bool speculative = false;
    const SqEntry *youngest_match = nullptr;
    for (const SqEntry &store : sq) {
        if (!store.valid || store.seq >= entry.seq)
            continue;
        if (!store.addr_ready) {
            bool predicted_wait =
                load_wait[(entry.pc >> 2) & 255] != 0 ||
                !cfg.mem_disambiguation_speculation;
            if (predicted_wait)
                return false; // hold the load back
            speculative = true;
            continue;
        }
        if (!rangesOverlap(store.addr.v, store.bytes, addr.v, bytes))
            continue;
        bool contains = store.addr.v <= addr.v &&
                        store.addr.v + store.bytes >= addr.v + bytes;
        if (!contains)
            return false; // partial overlap: wait for the store
        if (youngest_match == nullptr ||
            store.seq > youngest_match->seq)
            youngest_match = &store;
    }
    ift::TaintContrib rob_before = robContrib(entry);
    if (youngest_match != nullptr) {
        // Store-to-load forwarding (speculative when an unresolved
        // older store might still alias).
        unsigned shift = static_cast<unsigned>(
                             addr.v - youngest_match->addr.v) * 8;
        TV data = ift::shrConst(youngest_match->data, shift);
        entry.result = ift::truncCell(data, bytes * 8);
        entry.forwarded = true;
    }

    entry.addr = addr;
    rob_acct_.apply(rob_before, robContrib(entry));
    {
        ift::TaintContrib before = lqContrib(lqe);
        lqe.addr = addr;
        lq_acct_.apply(before, lqContrib(lqe));
    }
    lqe.bytes = bytes;
    lqe.addr_ready = true;
    lqe.speculative = speculative;

    // Architectural permission check on the full address.
    ExcCause exc = mem.check(addr.v, bytes, AccessKind::Load, priv);
    entry.exc = exc;
    if (exc != ExcCause::None)
        entry.badaddr = addr;

    // Translation timing (skipped for forwards and faults).
    unsigned tlb_cycles = 0;
    if (!entry.forwarded && exc == ExcCause::None) {
        uint64_t vpn = addr.v >> 12;
        if (!dtlb.hit(vpn)) {
            if (l2tlb.hit(vpn)) {
                tlb_cycles = cfg.tlb_miss_latency / 2;
            } else {
                tlb_cycles = cfg.tlb_miss_latency;
                l2tlb.insert(TV{vpn, addr.t});
            }
            dtlb.insert(TV{vpn, addr.t});
        }
    }

    entry.load_phase = LoadPhase::Tlb;
    entry.remaining = tlb_cycles;
    entry.stage = 1;
    ++mem_used_;
    return true;
}

void
Core::phaseIssue(Memory &mem, ift::TaintCtx &ctx, TraceLog *trace)
{
    unsigned scanned = 0;
    for (unsigned n = 0; n < rob_count && scanned < cfg.issue_scan;
         ++n) {
        RobEntry &entry = rob[robSlot(n)];
        if (!entry.valid || entry.stage != 0)
            continue;
        ++scanned;

        // Operand readiness.
        if (entry.src1_valid && prf_busy[entry.src1_prf])
            continue;
        if (entry.src2_valid && prf_busy[entry.src2_prf])
            continue;

        const Instr &instr = entry.instr;
        OpClass cls = isa::opClass(instr.op);

        // Renamed-map taint gating: reading a source through a tainted
        // rename entry is a tainted mux select. The gate call must be
        // unconditional so control traces stay aligned across passes
        // and instances regardless of local taint state.
        auto readSrc = [&](bool valid, uint16_t prf_idx,
                           uint8_t arch_slot) {
            if (!valid)
                return ift::clean(0);
            TV value = prf[prf_idx];
            bool gate =
                ctx.gate(ift::sigId(kModRename, arch_slot), prf_idx);
            if (rename_taint[arch_slot] && gate)
                value.t = ~0ULL;
            return value;
        };

        switch (cls) {
          case OpClass::Load: {
            if (mem_used_ >= cfg.mem_ports) {
                contention.mem_port_wait += 1;
                continue;
            }
            TV dummy = readSrc(entry.src1_valid, entry.src1_prf,
                               instr.rs1);
            (void)dummy;
            issueLoad(entry, mem, ctx);
            continue;
          }
          case OpClass::Store: {
            if (mem_used_ >= cfg.mem_ports) {
                contention.mem_port_wait += 1;
                continue;
            }
            TV rs1 = readSrc(entry.src1_valid, entry.src1_prf,
                             instr.rs1);
            TV data = readSrc(entry.src2_valid, entry.src2_prf,
                              isa::fpRs2(instr.op)
                                  ? static_cast<uint8_t>(32 + instr.rs2)
                                  : instr.rs2);
            TV addr = execEffAddr(instr, rs1);
            {
                ift::TaintContrib before = robContrib(entry);
                entry.addr = addr;
                rob_acct_.apply(before, robContrib(entry));
            }
            SqEntry &store = sq[entry.sq];
            {
                ift::TaintContrib before = sqContrib(store);
                store.addr = addr;
                store.data = data;
                sq_acct_.apply(before, sqContrib(store));
            }
            store.addr_ready = true;
            entry.exc =
                mem.check(addr.v, entry.bytes, AccessKind::Store, priv);
            if (entry.exc != ExcCause::None)
                entry.badaddr = addr;
            entry.remaining = 1;
            entry.stage = 1;
            ++mem_used_;

            // Disambiguation violation: a younger load already ran.
            const LqEntry *violator = nullptr;
            const RobEntry *violator_rob = nullptr;
            for (unsigned m = 0; m < rob_count; ++m) {
                const RobEntry &cand = rob[robSlot(m)];
                if (!cand.valid || cand.lq < 0 || cand.seq <= entry.seq)
                    continue;
                const LqEntry &cl = lq[cand.lq];
                if (!cl.valid || !cl.addr_ready || !cl.speculative)
                    continue;
                if (cand.stage == 0)
                    continue;
                if (!rangesOverlap(addr.v, entry.bytes, cl.addr.v,
                                   cl.bytes))
                    continue;
                if (violator == nullptr || cand.seq < violator->seq) {
                    violator = &cl;
                    violator_rob = &cand;
                }
            }
            if (violator_rob != nullptr) {
                load_wait[(violator_rob->pc >> 2) & 255] = 1;
                TV squash_taint{
                    1, (addr.t | violator->addr.t) != 0 ? 1ULL : 0ULL};
                uint64_t v_seq = violator_rob->seq;
                uint64_t v_pc = violator_rob->pc;
                uint32_t v_open = violator_rob->dispatch_cycle;
                squashYounger(v_seq, true, ift::clean(v_pc),
                              squash_taint,
                              SquashCause::MemDisambiguation,
                              ExcCause::None, v_pc, v_pc, v_open, ctx,
                              trace);
                return; // pipeline state changed; end issue phase
            }
            continue;
          }
          case OpClass::Branch: {
            if (alu_used_ >= cfg.alu_ports)
                continue;
            ++alu_used_;
            TV rs1 = readSrc(entry.src1_valid, entry.src1_prf,
                             instr.rs1);
            TV rs2 = readSrc(entry.src2_valid, entry.src2_prf,
                             instr.rs2);
            TV cond = execBranchCond(
                instr, rs1, rs2, ctx,
                ift::sigId(kModExec, static_cast<uint16_t>(
                                         entry.pc & 0xffff)));
            entry.actual_taken = (cond.v & 1) != 0;
            uint64_t target =
                entry.actual_taken
                    ? entry.pc + static_cast<uint64_t>(instr.imm)
                    : entry.pc + 4;
            entry.actual_target =
                TV{target, (cond.t & 1) ? ~0ULL : 0ULL};
            // Clean result over a dispatch-wiped clean result: no
            // account delta (also jal/jalr below). actual_target is
            // not a counted field.
            entry.result = ift::clean(0);
            entry.remaining = 1;
            entry.stage = 1;
            continue;
          }
          case OpClass::Jal: {
            if (alu_used_ >= cfg.alu_ports)
                continue;
            ++alu_used_;
            entry.actual_taken = true;
            entry.actual_target = ift::clean(
                entry.pc + static_cast<uint64_t>(instr.imm));
            entry.result = ift::clean(entry.pc + 4);
            entry.remaining = 1;
            entry.stage = 1;
            continue;
          }
          case OpClass::Jalr: {
            if (alu_used_ >= cfg.alu_ports)
                continue;
            ++alu_used_;
            TV rs1 = readSrc(entry.src1_valid, entry.src1_prf,
                             instr.rs1);
            entry.actual_taken = true;
            entry.actual_target = execJalrTarget(instr, rs1);
            entry.result = ift::clean(entry.pc + 4);
            entry.remaining = 1;
            entry.stage = 1;
            continue;
          }
          case OpClass::MulDiv: {
            bool is_div = instr.op == Op::DIV || instr.op == Op::DIVU ||
                          instr.op == Op::REM || instr.op == Op::REMU ||
                          instr.op == Op::DIVW || instr.op == Op::REMW;
            if (alu_used_ >= cfg.alu_ports)
                continue;
            if (is_div && cycle_ < div_busy_until) {
                contention.div_busy_wait += 1;
                continue;
            }
            ++alu_used_;
            TV rs1 = readSrc(entry.src1_valid, entry.src1_prf,
                             instr.rs1);
            TV rs2 = readSrc(entry.src2_valid, entry.src2_prf,
                             instr.rs2);
            {
                ift::TaintContrib before = robContrib(entry);
                entry.result = execArith(
                    instr, rs1, rs2, entry.pc, ctx,
                    ift::sigId(kModExec, static_cast<uint16_t>(
                                             entry.pc & 0xffff)));
                rob_acct_.apply(before, robContrib(entry));
            }
            entry.remaining =
                execLatency(instr, cfg.mul_latency, cfg.div_latency,
                            cfg.fpalu_latency, cfg.fdiv_latency);
            if (is_div)
                div_busy_until = cycle_ + entry.remaining;
            entry.stage = 1;
            continue;
          }
          case OpClass::FpDiv: {
            if (alu_used_ >= cfg.alu_ports)
                continue;
            if (cycle_ < fdiv_busy_until) {
                contention.fdiv_busy_wait += 1;
                continue;
            }
            ++alu_used_;
            TV rs1 = readSrc(entry.src1_valid, entry.src1_prf,
                             static_cast<uint8_t>(32 + instr.rs1));
            TV rs2 = readSrc(entry.src2_valid, entry.src2_prf,
                             static_cast<uint8_t>(32 + instr.rs2));
            {
                ift::TaintContrib before = robContrib(entry);
                entry.result =
                    execArith(instr, rs1, rs2, entry.pc, ctx,
                              ift::sigId(kModExec, 0x7fff));
                rob_acct_.apply(before, robContrib(entry));
            }
            entry.remaining = cfg.fdiv_latency;
            fdiv_busy_until = cycle_ + cfg.fdiv_latency;
            fdiv_latch = rs1;
            entry.stage = 1;
            continue;
          }
          default: {
            if (alu_used_ >= cfg.alu_ports)
                continue;
            ++alu_used_;
            uint8_t s1_slot = isa::fpRs1(instr.op)
                                  ? static_cast<uint8_t>(32 + instr.rs1)
                                  : instr.rs1;
            uint8_t s2_slot = isa::fpRs2(instr.op)
                                  ? static_cast<uint8_t>(32 + instr.rs2)
                                  : instr.rs2;
            TV rs1 = readSrc(entry.src1_valid, entry.src1_prf, s1_slot);
            TV rs2 = readSrc(entry.src2_valid, entry.src2_prf, s2_slot);
            switch (instr.op) {
              case Op::ECALL:
                entry.exc = priv == isa::Priv::M ? ExcCause::EcallM
                                                 : ExcCause::EcallU;
                break;
              case Op::EBREAK:
                entry.exc = ExcCause::Breakpoint;
                break;
              case Op::MRET:
              case Op::SRET:
                if (priv != isa::Priv::M)
                    entry.exc = ExcCause::IllegalInstr;
                break;
              case Op::ILLEGAL:
                entry.exc = ExcCause::IllegalInstr;
                break;
              default: {
                ift::TaintContrib before = robContrib(entry);
                entry.result = execArith(
                    instr, rs1, rs2, entry.pc, ctx,
                    ift::sigId(kModExec, static_cast<uint16_t>(
                                             entry.pc & 0xffff)));
                rob_acct_.apply(before, robContrib(entry));
                break;
              }
            }
            entry.remaining =
                execLatency(instr, cfg.mul_latency, cfg.div_latency,
                            cfg.fpalu_latency, cfg.fdiv_latency);
            entry.stage = 1;
            continue;
          }
        }
    }
}

// --- dispatch -----------------------------------------------------------------

void
Core::phaseDispatch(ift::TaintCtx &ctx, TraceLog *trace)
{
    (void)trace;
    for (unsigned n = 0; n < cfg.dispatch_width; ++n) {
        if (fetchq.empty() || robFull() || decode_blocked_)
            break;
        FetchSlot slot = fetchq.front();
        const Instr &instr = slot.instr;

        bool is_load = isa::isLoad(instr.op);
        bool is_store = isa::isStore(instr.op);

        // Resource checks.
        int lq_slot = -1;
        int sq_slot = -1;
        if (is_load) {
            for (size_t i = 0; i < lq.size(); ++i) {
                if (!lq[i].valid) {
                    lq_slot = static_cast<int>(i);
                    break;
                }
            }
            if (lq_slot < 0)
                break;
        }
        if (is_store) {
            for (size_t i = 0; i < sq.size(); ++i) {
                if (!sq[i].valid) {
                    sq_slot = static_cast<int>(i);
                    break;
                }
            }
            if (sq_slot < 0)
                break;
        }

        bool wants_rd = isa::writesIntRd(instr.op) || isa::fpRd(instr.op);
        bool has_rd =
            wants_rd && !(instr.rd == 0 && !isa::fpRd(instr.op));
        if (has_rd && prf_free.empty())
            break;

        fetchq.erase(fetchq.begin());
        fetchq_taint_slots_ -= slot.pc_taint ? 1u : 0u;

        unsigned tail = robSlot(rob_count);
        ++rob_count;
        RobEntry &entry = rob[tail];
        // The wipe clears the stale occupant's (counted) taint and the
        // meta assignment below writes the new entry's: one account
        // delta spans both.
        ift::TaintContrib rob_before = robContrib(entry);
        entry = RobEntry{};
        entry.valid = true;
        entry.seq = nextSeq();
        entry.pc = slot.pc;
        entry.instr = instr;
        entry.dispatch_cycle = static_cast<uint32_t>(cycle_);
        entry.pred_taken = slot.pred_taken;
        entry.pred_target = slot.pred_target;
        entry.ras_pushed = slot.ras_pushed;
        entry.ras_popped = slot.ras_popped;
        entry.is_ctrl = isa::isBranch(instr.op) ||
                        instr.op == Op::JALR || instr.op == Op::JAL;
        entry.bytes = isa::accessBytes(instr.op);
        // The tainted tail pointer is the enqueue enable: its control
        // taint reaches the new entry only through an open gate (under
        // diffIFT that needs an actual cross-instance divergence).
        bool enq_gate = ctx.gate(ift::sigId(kModRob, 2), slot.pc);
        entry.meta = TV{isa::encode(instr),
                        (slot.pc_taint ? ~0ULL : 0ULL) |
                            (enq_gate ? rob_tail_taint_.t : 0)};
        rob_acct_.apply(rob_before, robContrib(entry));

        // Fetch faults dispatch as immediately-done faulting entries.
        if (slot.fetch_exc != ExcCause::None) {
            entry.exc = slot.fetch_exc;
            entry.badaddr = ift::clean(slot.pc);
            entry.stage = 2;
            ++enq_this_cycle_;
            continue;
        }

        // Rename sources.
        if (isa::readsIntRs1(instr.op) || isa::fpRs1(instr.op)) {
            uint8_t s1 = isa::fpRs1(instr.op)
                             ? static_cast<uint8_t>(32 + instr.rs1)
                             : instr.rs1;
            entry.src1_valid = true;
            entry.src1_prf = rename_map[s1];
        }
        if (isa::readsIntRs2(instr.op) || isa::fpRs2(instr.op)) {
            uint8_t s2 = isa::fpRs2(instr.op)
                             ? static_cast<uint8_t>(32 + instr.rs2)
                             : instr.rs2;
            entry.src2_valid = true;
            entry.src2_prf = rename_map[s2];
        }

        // Rename destination.
        if (has_rd) {
            uint8_t rd_slot = isa::fpRd(instr.op)
                                  ? static_cast<uint8_t>(32 + instr.rd)
                                  : instr.rd;
            entry.has_rd = true;
            entry.rd_slot = rd_slot;
            entry.prf_idx = prf_free.back();
            prf_free.pop_back();
            entry.prf_old = rename_map[rd_slot];
            rename_map[rd_slot] = entry.prf_idx;
            prf_busy[entry.prf_idx] = 1;
            prf_alloc[entry.prf_idx] = 1;
        }

        if (is_load) {
            entry.lq = lq_slot;
            LqEntry &lqe = lq[lq_slot];
            ift::TaintContrib before = lqContrib(lqe);
            lqe = LqEntry{};
            lq_acct_.apply(before, lqContrib(lqe));
            lqe.valid = true;
            lqe.rob_slot = static_cast<int>(tail);
            lqe.seq = entry.seq;
        }
        if (is_store) {
            entry.sq = sq_slot;
            SqEntry &sqe = sq[sq_slot];
            ift::TaintContrib before = sqContrib(sqe);
            sqe = SqEntry{};
            sq_acct_.apply(before, sqContrib(sqe));
            sqe.valid = true;
            sqe.rob_slot = static_cast<int>(tail);
            sqe.seq = entry.seq;
            sqe.bytes = entry.bytes;
        }

        // Instantly-complete ops (no execution semantics).
        if (instr.op == Op::SWAPNEXT || instr.op == Op::FENCE ||
            instr.op == Op::FENCE_I) {
            entry.stage = 2;
        }

        // BOOM stalls decode on illegal instructions: nothing younger
        // enters the backend, so no illegal-trigger transient window.
        if (instr.op == Op::ILLEGAL && cfg.illegal_stalls_decode)
            decode_blocked_ = true;

        ++enq_this_cycle_;
    }
}

// --- fetch --------------------------------------------------------------------

void
Core::predecode(FetchSlot &slot, ift::TaintCtx &ctx)
{
    const Instr &instr = slot.instr;
    slot.pred_taken = false;
    slot.pred_target = ift::clean(slot.pc + 4);

    if (isa::isBranch(instr.op)) {
        bool taken = bht.predictTaken(slot.pc);
        bool loop_taken = false;
        if (loop.enabled() && loop.predict(slot.pc, loop_taken))
            taken = loop_taken;
        slot.pred_taken = taken;
        if (taken) {
            slot.pred_target = ift::clean(
                slot.pc + static_cast<uint64_t>(instr.imm));
        }
        return;
    }
    if (instr.op == Op::JAL) {
        slot.pred_taken = true;
        slot.pred_target =
            ift::clean(slot.pc + static_cast<uint64_t>(instr.imm));
        if (isa::isCall(instr)) {
            // A push whose occurrence diverges across the secret
            // variants writes a tainted entry (Table-1 memory-write
            // semantics on the RAS array).
            bool g = ctx.gate(ift::sigId(kModRas, 1), slot.pc);
            TV ret{slot.pc + 4,
                   (slot.pc_taint || g) ? ~0ULL : 0ULL};
            ras.push(ret);
            slot.ras_pushed = true;
        }
        return;
    }
    if (instr.op == Op::JALR) {
        slot.pred_taken = true;
        if (isa::isRet(instr)) {
            bool g = ctx.gate(ift::sigId(kModRas, 2), slot.pc);
            slot.pred_target = ras.pop();
            if (g)
                slot.pred_target.t |= ~0ULL;
            slot.ras_popped = true;
        } else {
            TV target;
            if (indpred.lookup(slot.pc, target) ||
                btb.lookup(slot.pc, target) ||
                (faubtb.entries() > 0 && faubtb.lookup(slot.pc, target))) {
                slot.pred_target = target;
            } else {
                slot.pred_target = ift::clean(slot.pc + 4);
            }
        }
        if (isa::isCall(instr)) {
            bool g = ctx.gate(ift::sigId(kModRas, 1), slot.pc);
            TV ret{slot.pc + 4,
                   (slot.pc_taint || g) ? ~0ULL : 0ULL};
            ras.push(ret);
            slot.ras_pushed = true;
        }
        return;
    }
}

void
Core::phaseFetch(Memory &mem, ift::TaintCtx &ctx)
{
    unsigned budget = cfg.fetch_width;
    while (budget > 0) {
        if (fetchq.size() >= cfg.fetch_buffer)
            return;

        // ICache access.
        if (!icache_.hit(pc.v)) {
            if (icache_.refillBusy()) {
                // Refill engine busy - possibly on a transient line
                // (B4: the squash did not reclaim the port).
                if (icache_.refillLine() != lineOf(pc.v))
                    contention.fetch_refill_wait += 1;
                return;
            }
            bool pc_ctl =
                ctx.memReadGate(ift::sigId(kModICache, 1), pc);
            icache_.startRefill(pc.v, pc_ctl);
            return;
        }

        ExcCause exc = mem.check(pc.v, 4, AccessKind::Fetch, priv);
        FetchSlot slot;
        slot.valid = true;
        slot.pc = pc.v;
        slot.pc_taint = pc.t != 0 ? 1 : 0;
        if (exc != ExcCause::None) {
            slot.fetch_exc = exc;
            slot.instr = isa::decode(isa::kNopWord);
            fetchq.push_back(slot);
            fetchq_taint_slots_ += slot.pc_taint ? 1u : 0u;
            return; // fetch stalls behind a faulting fetch
        }

        slot.instr = isa::decode(mem.fetchWord(pc.v));
        predecode(slot, ctx);
        fetchq.push_back(slot);
        fetchq_taint_slots_ += slot.pc_taint ? 1u : 0u;

        if (slot.pred_taken) {
            TV target = slot.pred_target;
            target.t |= pc.t; // staying on a tainted path
            pc = target;
            return; // taken prediction ends the fetch group
        }
        pc = TV{pc.v + 4, pc.t};
        --budget;
    }
}

// --- top-level tick --------------------------------------------------------

TickEvents
Core::tick(Memory &mem, ift::TaintCtx &ctx, TraceLog *trace)
{
    alu_used_ = 0;
    mem_used_ = 0;
    wb_used_ = 0;
    wb_pipeline_claimed_ = false;
    enq_this_cycle_ = 0;
    commit_this_cycle_ = 0;

    TickEvents ev;

    // Trap flush resolution (start of cycle) and the B3 BTB race: a
    // staged indirect-jump correction from the previous cycle collides
    // with the exception flush and is written to the faulting PC.
    bool trap_fires = trap_pending_ && trap_countdown_ == 0;
    if (btb_correction_.valid) {
        if (trap_fires && cfg.bug_b3_btb_race) {
            btb.update(trap_pc_, btb_correction_.target);
        } else if (cfg.speculative_predictor_update) {
            btb.update(btb_correction_.pc, btb_correction_.target);
        }
        btb_correction_.valid = false;
    }
    if (trap_fires) {
        trap_pending_ = false;
        // Taking a trap enters machine mode: the handler (and, when
        // the swap runtime advances on the trap, the next packet)
        // executes privileged until an mret/sret commits.
        priv = isa::Priv::M;
        // The faulting instruction itself architecturally "commits
        // with exception": drop it before flushing so it is not
        // counted among the transient (flushed) instructions.
        if (rob_count > 0 && rob[rob_head].exc != isa::ExcCause::None) {
            rollbackEntry(rob[rob_head]);
            rob_head = (rob_head + 1) % cfg.rob_entries;
            --rob_count;
        }
        flushAll(ift::clean(swapmem::kTrapVector), trap_taint_,
                 SquashCause::Exception, trap_cause_, trap_pc_, ctx,
                 trace);
        ev.trapped = true;
        ev.exc = trap_cause_;
        ev.trap_pc = trap_pc_;
    } else if (trap_pending_) {
        --trap_countdown_;
    }

    if (!ev.trapped) {
        TickEvents commit_ev = phaseCommit(mem, ctx, trace);
        ev.swap_next |= commit_ev.swap_next;
    }
    phaseExecute(mem, ctx, trace);
    phaseIssue(mem, ctx, trace);
    phaseDispatch(ctx, trace);
    if (!ev.trapped)
        phaseFetch(mem, ctx);

    // Cache engines.
    icache_.tick();
    {
        // Refill data for each pending MSHR (read at completion).
        std::vector<TV> refill_data(dcache.mshrCount());
        for (size_t i = 0; i < dcache.mshrCount(); ++i) {
            const MshrEntry &pending = dcache.mshr(static_cast<int>(i));
            if (pending.valid)
                refill_data[i] = mem.read(pending.addr.v & ~7ULL, 8);
        }
        dcache.tick(refill_data);
    }

    if (trace != nullptr) {
        if (enq_this_cycle_ != 0 || commit_this_cycle_ != 0) {
            trace->rob_io.push_back(
                RobIoRec{static_cast<uint32_t>(cycle_), enq_this_cycle_,
                         commit_this_cycle_});
        }
        trace->cycles = cycle_ + 1;
    }

    ++cycle_;
    return ev;
}

// --- observability ------------------------------------------------------------

void
Core::moduleTaintStats(std::array<ModuleStat, kModCount> &stats) const
{
    for (auto &stat : stats)
        stat = ModuleStat{};

    auto put = [&](ModuleId id, uint32_t regs, uint64_t bits) {
        stats[id].tainted_regs = regs;
        stats[id].taint_bits = bits;
    };

    // O(kModCount) assembly of the incremental running sums: the only
    // per-call work is reading scalars (pc, fdiv_latch, trap state,
    // the RoB tail pointer taint) that are not containers.
    put(kModFrontend,
        (pc.t != 0 ? 1u : 0u) + fetchq_taint_slots_,
        static_cast<uint64_t>(popcount64(pc.t)) +
            static_cast<uint64_t>(fetchq_taint_slots_) * 32);
    put(kModICache, icache_.taintedRegCount(), icache_.taintBits());
    put(kModBht, bht.taintedRegCount(), bht.taintBits());
    put(kModBtb, btb.taintedRegCount(), btb.taintBits());
    put(kModFauBtb, faubtb.taintedRegCount(), faubtb.taintBits());
    put(kModRas, ras.taintedRegCount(), ras.taintBits());
    put(kModLoopPred, loop.taintedRegCount(), loop.taintBits());
    put(kModIndPred, indpred.taintedRegCount(), indpred.taintBits());
    put(kModRename, rename_taint_regs_,
        static_cast<uint64_t>(rename_taint_regs_) * 8);
    put(kModPrf, prf_acct_.regs, prf_acct_.bits);
    put(kModRob,
        (rob_tail_taint_.t != 0 ? 1u : 0u) + rob_acct_.regs,
        static_cast<uint64_t>(popcount64(rob_tail_taint_.t)) +
            rob_acct_.bits);
    {
        uint32_t regs = fdiv_latch.t != 0 ? 1 : 0;
        put(kModLsu, regs, popcount64(fdiv_latch.t));
    }
    put(kModLq, lq_acct_.regs, lq_acct_.bits);
    put(kModSq, sq_acct_.regs, sq_acct_.bits);
    put(kModDCache, dcache.taintedRegCount(), dcache.taintBits());
    put(kModMshr, dcache.mshrTaintedRegCount(), dcache.mshrTaintBits());
    put(kModLfb, dcache.lfbTaintedRegCount(), dcache.lfbTaintBits());
    put(kModDtlb, dtlb.taintedRegCount(), dtlb.taintBits());
    put(kModL2Tlb, l2tlb.taintedRegCount(), l2tlb.taintBits());
    {
        uint32_t regs = fdiv_latch.t != 0 ? 1 : 0;
        put(kModExec, regs, popcount64(fdiv_latch.t));
    }
    put(kModCsr, trap_taint_.t != 0 ? 1 : 0, trap_taint_.t != 0 ? 1 : 0);
}

void
Core::moduleTaintStatsRescan(
    std::array<ModuleStat, kModCount> &stats) const
{
    for (auto &stat : stats)
        stat = ModuleStat{};

    auto put = [&](ModuleId id, uint32_t regs, uint64_t bits) {
        stats[id].tainted_regs = regs;
        stats[id].taint_bits = bits;
    };

    // Frontend: PC + fetch buffer slots.
    {
        uint32_t regs = pc.t != 0 ? 1 : 0;
        uint64_t bits = popcount64(pc.t);
        for (const auto &slot : fetchq) {
            if (slot.pc_taint) {
                regs += 1;
                bits += 32;
            }
        }
        put(kModFrontend, regs, bits);
    }
    put(kModICache, icache_.taintedRegCountRescan(),
        icache_.taintBitsRescan());
    put(kModBht, bht.taintedRegCountRescan(), bht.taintBitsRescan());
    put(kModBtb, btb.taintedRegCountRescan(), btb.taintBitsRescan());
    put(kModFauBtb, faubtb.taintedRegCountRescan(),
        faubtb.taintBitsRescan());
    put(kModRas, ras.taintedRegCountRescan(), ras.taintBitsRescan());
    put(kModLoopPred, loop.taintedRegCountRescan(),
        loop.taintBitsRescan());
    put(kModIndPred, indpred.taintedRegCountRescan(),
        indpred.taintBitsRescan());
    {
        uint32_t regs = 0;
        for (uint8_t taint : rename_taint)
            regs += taint != 0;
        put(kModRename, regs, static_cast<uint64_t>(regs) * 8);
    }
    {
        uint32_t regs = 0;
        uint64_t bits = 0;
        for (const TV &value : prf) {
            regs += value.t != 0;
            bits += popcount64(value.t);
        }
        put(kModPrf, regs, bits);
    }
    {
        uint32_t regs = rob_tail_taint_.t != 0 ? 1 : 0;
        uint64_t bits = popcount64(rob_tail_taint_.t);
        for (const auto &entry : rob) {
            uint64_t taint = entry.meta.t | entry.result.t |
                             entry.addr.t;
            regs += taint != 0;
            bits += popcount64(entry.meta.t) +
                    popcount64(entry.result.t);
        }
        put(kModRob, regs, bits);
    }
    {
        uint32_t regs = fdiv_latch.t != 0 ? 1 : 0;
        put(kModLsu, regs, popcount64(fdiv_latch.t));
    }
    {
        uint32_t regs = 0;
        uint64_t bits = 0;
        for (const auto &entry : lq) {
            regs += entry.addr.t != 0;
            bits += popcount64(entry.addr.t);
        }
        put(kModLq, regs, bits);
    }
    {
        uint32_t regs = 0;
        uint64_t bits = 0;
        for (const auto &entry : sq) {
            uint64_t taint = entry.addr.t | entry.data.t;
            regs += taint != 0;
            bits += popcount64(entry.addr.t) + popcount64(entry.data.t);
        }
        put(kModSq, regs, bits);
    }
    put(kModDCache, dcache.taintedRegCountRescan(),
        dcache.taintBitsRescan());
    put(kModMshr, dcache.mshrTaintedRegCountRescan(),
        dcache.mshrTaintBitsRescan());
    put(kModLfb, dcache.lfbTaintedRegCountRescan(),
        dcache.lfbTaintBitsRescan());
    put(kModDtlb, dtlb.taintedRegCountRescan(),
        dtlb.taintBitsRescan());
    put(kModL2Tlb, l2tlb.taintedRegCountRescan(),
        l2tlb.taintBitsRescan());
    {
        uint32_t regs = fdiv_latch.t != 0 ? 1 : 0;
        put(kModExec, regs, popcount64(fdiv_latch.t));
    }
    put(kModCsr, trap_taint_.t != 0 ? 1 : 0, trap_taint_.t != 0 ? 1 : 0);
}

bool
Core::verifyTaintAccounts() const
{
    obs::counterAdd(obs::Ctr::TaintRescanChecks);
    std::array<ModuleStat, kModCount> fast;
    std::array<ModuleStat, kModCount> slow;
    moduleTaintStats(fast);
    moduleTaintStatsRescan(slow);
    for (unsigned m = 0; m < kModCount; ++m) {
        if (fast[m].tainted_regs != slow[m].tainted_regs ||
            fast[m].taint_bits != slow[m].taint_bits) {
            return false;
        }
    }
    return true;
}

uint64_t
Core::taintTransitions() const
{
    return icache_.taintTransitions() + dcache.taintTransitions() +
           dtlb.taintTransitions() + l2tlb.taintTransitions() +
           bht.taintTransitions() + btb.taintTransitions() +
           faubtb.taintTransitions() + ras.taintTransitions() +
           loop.taintTransitions() + indpred.taintTransitions() +
           prf_acct_.transitions + rob_acct_.transitions +
           lq_acct_.transitions + sq_acct_.transitions;
}

void
Core::appendTaintLog(ift::TaintLog &log) const
{
    std::array<ModuleStat, kModCount> stats;
    moduleTaintStats(stats);
    ift::TaintLogCycle &rec = log.beginCycle(cycle_);
    for (unsigned m = 0; m < kModCount; ++m) {
        if (stats[m].tainted_regs == 0 && stats[m].taint_bits == 0)
            continue;
        log.addSample(rec, ift::ModuleTaintSample{
                               static_cast<uint16_t>(m),
                               stats[m].tainted_regs,
                               stats[m].taint_bits});
    }
#ifndef NDEBUG
    // Debug builds cross-check the incremental accounts every logged
    // cycle; release builds rely on the explicit property test.
    dv_assert(verifyTaintAccounts());
#endif
}

std::array<uint16_t, kModCount>
Core::registerModules(ift::TaintCoverage &coverage,
                      const CoreConfig &config)
{
    std::array<uint16_t, kModCount> ids{};
    auto reg = [&](ModuleId id, uint32_t max_regs) {
        ids[id] = coverage.registerModule(moduleName(id), max_regs);
    };
    reg(kModFrontend, config.fetch_buffer + 1);
    reg(kModICache, config.icache_lines);
    reg(kModBht, config.bht_entries);
    reg(kModBtb, config.btb_entries);
    reg(kModFauBtb, config.faubtb_entries);
    reg(kModRas, config.ras_entries);
    reg(kModLoopPred, config.loop_entries);
    reg(kModIndPred, config.ind_entries);
    reg(kModRename, 64);
    reg(kModPrf, config.prf_entries);
    reg(kModRob, config.rob_entries);
    reg(kModLsu, 2);
    reg(kModLq, config.lq_entries);
    reg(kModSq, config.sq_entries);
    reg(kModDCache, config.dcache_lines);
    reg(kModMshr, config.mshr_entries);
    reg(kModLfb, config.lfb_entries);
    reg(kModDtlb, config.dtlb_entries);
    reg(kModL2Tlb, config.l2tlb_entries);
    reg(kModExec, 2);
    reg(kModCsr, 2);
    return ids;
}

void
Core::sampleCoverage(ift::TaintCoverage &coverage,
                     const std::array<uint16_t, kModCount> &ids) const
{
    std::array<ModuleStat, kModCount> stats;
    moduleTaintStats(stats);
    for (unsigned m = 0; m < kModCount; ++m)
        coverage.sample(ids[m], stats[m].tainted_regs);
}

uint64_t
Core::timingStateHash() const
{
    uint64_t hash = kFnvOffset;
    hash = fnv1a(hash, icache_.stateHash());
    hash = fnv1a(hash, dcache.stateHash());
    hash = fnv1a(hash, btb.stateHash());
    hash = fnv1a(hash, faubtb.stateHash());
    hash = fnv1a(hash, ras.stateHash());
    hash = fnv1a(hash, loop.stateHash());
    hash = fnv1a(hash, indpred.stateHash());
    hash = fnv1a(hash, dtlb.stateHash());
    hash = fnv1a(hash, l2tlb.stateHash());
    hash = fnv1a(hash, bht.stateHash());
    return hash;
}

uint64_t
Core::cachedDataHash(const swapmem::Memory &mem) const
{
    uint64_t hash = kFnvOffset;
    std::vector<uint64_t> lines;
    dcache.validLines(lines);
    for (uint64_t line : lines) {
        uint64_t base = line * kLineBytes;
        for (unsigned off = 0; off < kLineBytes; off += 8)
            hash = fnv1a(hash, mem.read(base + off, 8).v);
    }
    hash = fnv1a(hash, dcache.lfbDataHash());
    return hash;
}

void
Core::enumSinks(std::vector<ift::SinkSnapshot> &out) const
{
    // The writer overwrites the buffer in place: a pooled DutResult's
    // sink vectors are reused across iterations without reallocating.
    ift::SinkWriter writer(out);

    // Physical register file: liveness = currently allocated.
    {
        static const ift::SinkId kId = ift::internSink("prf", "regs");
        ift::SinkSnapshot &sink = writer.next(kId, true);
        sink.taint.resize(prf.size());
        sink.live.resize(prf.size());
        for (size_t i = 0; i < prf.size(); ++i) {
            sink.taint[i] = prf[i].t;
            sink.live[i] = prf_alloc[i];
        }
    }
    // RoB entry metadata: liveness = entry valid.
    {
        static const ift::SinkId kId =
            ift::internSink("rob", "entries");
        ift::SinkSnapshot &sink = writer.next(kId, true);
        sink.taint.resize(rob.size());
        sink.live.resize(rob.size());
        for (size_t i = 0; i < rob.size(); ++i) {
            sink.taint[i] =
                rob[i].meta.t | rob[i].result.t | rob[i].addr.t;
            sink.live[i] = rob[i].valid ? 1 : 0;
        }
    }
    // Load/store queues.
    {
        static const ift::SinkId kId = ift::internSink("lq", "entries");
        ift::SinkSnapshot &sink = writer.next(kId, true);
        sink.taint.resize(lq.size());
        sink.live.resize(lq.size());
        for (size_t i = 0; i < lq.size(); ++i) {
            sink.taint[i] = lq[i].addr.t;
            sink.live[i] = lq[i].valid ? 1 : 0;
        }
    }
    {
        static const ift::SinkId kId = ift::internSink("sq", "entries");
        ift::SinkSnapshot &sink = writer.next(kId, true);
        sink.taint.resize(sq.size());
        sink.live.resize(sq.size());
        for (size_t i = 0; i < sq.size(); ++i) {
            sink.taint[i] = sq[i].addr.t | sq[i].data.t;
            sink.live[i] = sq[i].valid ? 1 : 0;
        }
    }
    // FP divide operand latch: live while the divider is busy.
    {
        static const ift::SinkId kId =
            ift::internSink("fpu", "fdiv_latch");
        ift::SinkSnapshot &sink = writer.next(kId, true);
        sink.taint.assign(1, fdiv_latch.t);
        sink.live.assign(1, cycle_ < fdiv_busy_until ? 1 : 0);
    }
    bht.appendSinks(writer);
    btb.appendSinks(writer, "btb");
    if (faubtb.entries() > 0)
        faubtb.appendSinks(writer, "faubtb");
    ras.appendSinks(writer);
    loop.appendSinks(writer);
    indpred.appendSinks(writer);
    icache_.appendSinks(writer);
    dcache.appendSinks(writer);
    dtlb.appendSinks(writer);
    l2tlb.appendSinks(writer);
    writer.finish();
}

Core::Inventory
Core::inventory() const
{
    Inventory inv;
    inv.modules = kModCount - (faubtb.entries() == 0 ? 1 : 0) -
                  (loop.entries() == 0 ? 1 : 0);
    inv.state_regs =
        static_cast<unsigned>(prf.size() + rob.size() + lq.size() +
                              sq.size() + bht.entries() + btb.entries() +
                              faubtb.entries() + ras.entries() +
                              loop.entries() + indpred.entries() +
                              icache_.lines() + dcache.lines() +
                              dtlb.entries() + l2tlb.entries()) +
        64 /* rename */ + 8 /* misc latches */;
    inv.state_bits =
        static_cast<uint64_t>(prf.size()) * 64 + rob.size() * 96 +
        lq.size() * 72 + sq.size() * 136 + bht.entries() * 2 +
        (btb.entries() + faubtb.entries() + indpred.entries()) * 96 +
        ras.entries() * 64 + loop.entries() * 40 +
        icache_.lines() * 40 + dcache.lines() * 104 +
        (dtlb.entries() + l2tlb.entries()) * 52 + 64 * 8 + 512;
    std::vector<ift::SinkSnapshot> sinks;
    enumSinks(sinks);
    for (const auto &sink : sinks)
        inv.annotated_sinks += sink.annotated;
    return inv;
}

} // namespace dejavuzz::uarch
