/**
 * @file
 * Trace log: the per-cycle RoB IO events, commit records and squash
 * events a simulation emits. This is the paper's "trace log" -
 * Phase 1 decides from it whether a transient window triggered (more
 * instructions enqueued inside the window than committed) and Phase 3
 * compares commit timing between the two DUT variants.
 */

#ifndef DEJAVUZZ_UARCH_TRACELOG_HH
#define DEJAVUZZ_UARCH_TRACELOG_HH

#include <cstdint>
#include <vector>

#include "isa/exceptions.hh"
#include "isa/instr.hh"

namespace dejavuzz::uarch {

/** What caused a pipeline squash. */
enum class SquashCause : uint8_t {
    None,
    BranchMispredict,
    JumpMispredict,    ///< indirect jump target misprediction
    ReturnMispredict,  ///< RAS misprediction
    MemDisambiguation, ///< store-load ordering violation
    Exception,         ///< architectural trap flush
    PrivReturn,        ///< mret/sret commit flush (M->U transition)
};

const char *squashCauseName(SquashCause cause);

/** Per-cycle RoB IO sample. */
struct RobIoRec
{
    uint32_t cycle;
    uint8_t enqueued;
    uint8_t committed;
};

/** One committed instruction. */
struct CommitRec
{
    uint32_t cycle;
    uint64_t pc;
    isa::Op op;
};

/** One squash (window close) event. */
struct SquashRec
{
    uint32_t cycle = 0;         ///< cycle the squash fired
    uint32_t open_cycle = 0;    ///< cycle the squashing instr dispatched
    SquashCause cause = SquashCause::None;
    isa::ExcCause exc = isa::ExcCause::None;
    uint64_t pc = 0;            ///< PC of the squashing instruction
    uint64_t spec_pc = 0;       ///< first PC of the wrong (transient) path
    uint32_t flushed = 0;       ///< younger instructions discarded
    uint32_t transient_executed = 0; ///< flushed instrs that had executed
};

/** Whole-run trace. */
struct TraceLog
{
    std::vector<RobIoRec> rob_io;
    std::vector<CommitRec> commits;
    std::vector<SquashRec> squashes;
    uint64_t cycles = 0;

    void
    clear()
    {
        rob_io.clear();
        commits.clear();
        squashes.clear();
        cycles = 0;
    }

    /**
     * The transient-window evaluation of Phase 1 (step 1.2): true when
     * some squash flushed instructions that had been enqueued (and
     * partially executed) inside the window, i.e. RoB enqueue count
     * exceeded commit count for the window range.
     */
    bool
    windowTriggered() const
    {
        for (const auto &squash : squashes) {
            if (squash.flushed > 0)
                return true;
        }
        return false;
    }

    /** Largest squash event (the principal window), if any. */
    const SquashRec *
    principalWindow() const
    {
        const SquashRec *best = nullptr;
        for (const auto &squash : squashes) {
            if (squash.flushed == 0)
                continue;
            if (best == nullptr || squash.flushed > best->flushed)
                best = &squash;
        }
        return best;
    }
};

} // namespace dejavuzz::uarch

#endif // DEJAVUZZ_UARCH_TRACELOG_HH
