/**
 * @file
 * Core configuration: structure sizes, timing, feature flags and the
 * planted-bug switches for the two evaluated cores.
 *
 * SmallBoomConfig models the paper's BOOM SmallBOOM target (full
 * complement of speculatively-updated predictors including a FauBTB,
 * a return-address stack with the Phantom-RSB restore bug, a loop
 * predictor, and a decode stage that stalls on illegal instructions).
 * XiangShanMinimalConfig models the XiangShan MinimalConfig target
 * (larger structures, commit-time predictor updates, the B1 address
 * truncation and the B5 shared load write-back port).
 */

#ifndef DEJAVUZZ_UARCH_CONFIG_HH
#define DEJAVUZZ_UARCH_CONFIG_HH

#include <cstdint>
#include <string>
#include <vector>

namespace dejavuzz::uarch {

/** Which paper core a config models. */
enum class CoreKind : uint8_t { Boom, XiangShan };

struct CoreConfig
{
    std::string name;
    CoreKind kind = CoreKind::Boom;
    std::string isa = "RV64GC";

    // --- pipeline widths ---------------------------------------------
    unsigned fetch_width = 2;
    unsigned dispatch_width = 2;
    unsigned commit_width = 2;
    unsigned issue_scan = 8;      ///< max entries inspected per cycle

    // --- structure sizes ----------------------------------------------
    unsigned rob_entries = 32;
    unsigned prf_entries = 96;
    unsigned lq_entries = 8;
    unsigned sq_entries = 8;
    unsigned fetch_buffer = 8;

    unsigned bht_entries = 128;   ///< 2-bit counters
    unsigned btb_entries = 16;
    unsigned faubtb_entries = 8;  ///< 0 disables the FauBTB
    unsigned ras_entries = 8;
    unsigned loop_entries = 8;    ///< 0 disables the loop predictor
    unsigned ind_entries = 8;     ///< indirect target predictor

    unsigned icache_lines = 32;   ///< direct-mapped, 64B lines
    unsigned dcache_lines = 64;   ///< direct-mapped, 64B lines
    unsigned mshr_entries = 4;
    unsigned lfb_entries = 4;
    unsigned dtlb_entries = 8;
    unsigned l2tlb_entries = 16;

    // --- timing --------------------------------------------------------
    unsigned dcache_hit_latency = 2;
    unsigned dcache_miss_latency = 14;
    unsigned icache_miss_latency = 10;
    unsigned tlb_miss_latency = 6;
    unsigned mul_latency = 3;
    unsigned div_latency = 14;    ///< unpipelined integer divide
    unsigned fpalu_latency = 4;
    unsigned fdiv_latency = 18;   ///< unpipelined FP divide
    unsigned trap_latency = 10;   ///< cycles from faulting commit-head
                                  ///< to pipeline flush (transient
                                  ///< window for exception triggers)
    unsigned alu_ports = 2;
    unsigned mem_ports = 1;
    unsigned load_wb_ports = 1;

    // --- behaviour flags -------------------------------------------------
    /** Faulting loads transiently forward data (Meltdown family). */
    bool meltdown_forwarding = true;
    /** Illegal instructions stall at decode (no transient window). */
    bool illegal_stalls_decode = true;
    /** Predictors update speculatively at resolve (vs at commit). */
    bool speculative_predictor_update = true;
    /** Loads may issue before older unknown store addresses. */
    bool mem_disambiguation_speculation = true;

    // --- planted bugs (Table 5) -----------------------------------------
    /** B1: load-unit address wire truncates the high mask bits. */
    bool bug_b1_addr_truncation = false;
    /** B2: RAS mispredict recovery restores only TOS + top entry. */
    bool bug_b2_ras_partial_restore = false;
    /** B3: exception commit racing an indirect-jump correction
     *  updates the BTB entry of the faulting PC. */
    bool bug_b3_btb_race = false;
    /** B4: transient fetch misses preempt the shared fetch refill
     *  port past the squash. */
    bool bug_b4_fetch_refill_preempt = true;
    /** B5: load pipeline and load queue share the write-back port. */
    bool bug_b5_shared_load_wb = false;

    /** Liveness annotation line count (Table 2 reporting). */
    unsigned annotation_loc = 0;
};

/** The paper's BOOM SmallBOOM configuration. */
CoreConfig smallBoomConfig();

/** The paper's XiangShan MinimalConfig configuration. */
CoreConfig xiangshanMinimalConfig();

/**
 * Every core configuration this build registers, in a fixed
 * deterministic order. Cross-config tooling (the triage portability
 * matrix, `dejavuzz-replay`) iterates this list instead of
 * hard-coding the paper's two cores, so adding a config here extends
 * the whole pipeline.
 */
const std::vector<CoreConfig> &registeredCoreConfigs();

/**
 * Resolve a persisted core config name against the registered set.
 * Returns false (leaving @p out untouched) for unknown names.
 */
bool coreConfigByName(const std::string &name, CoreConfig &out);

/** Stable module identifiers used for coverage and taint logs. */
enum ModuleId : uint16_t {
    kModFrontend = 0,
    kModICache,
    kModBht,
    kModBtb,
    kModFauBtb,
    kModRas,
    kModLoopPred,
    kModIndPred,
    kModRename,
    kModPrf,
    kModRob,
    kModLsu,
    kModLq,
    kModSq,
    kModDCache,
    kModMshr,
    kModLfb,
    kModDtlb,
    kModL2Tlb,
    kModExec,
    kModCsr,
    kModCount,
};

const char *moduleName(ModuleId module_id);

} // namespace dejavuzz::uarch

#endif // DEJAVUZZ_UARCH_CONFIG_HH
