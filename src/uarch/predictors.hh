/**
 * @file
 * Branch prediction complex: BHT, BTB, FauBTB, RAS, loop predictor
 * and indirect-target predictor.
 *
 * All predictors are value types (the differential harness snapshots
 * cores by copy). Entries carry taint (TV) so transient,
 * secret-dependent training pollutes predictor state observably -
 * the (fau)btb / ras / loop timing components of Table 5.
 *
 * The RAS implements the paper's B2 Phantom-RSB bug: BOOM's
 * mispredict recovery restores the TOS pointer and the top entry but
 * not entries below the TOS that transient calls overwrote.
 */

#ifndef DEJAVUZZ_UARCH_PREDICTORS_HH
#define DEJAVUZZ_UARCH_PREDICTORS_HH

#include <cstdint>
#include <vector>

#include "ift/liveness.hh"
#include "ift/taint.hh"
#include "ift/taintacct.hh"
#include "util/bits.hh"

namespace dejavuzz::uarch {

using ift::TV;

// Each predictor keeps an ift::TaintAcct next to its storage: the
// O(1) taintedRegCount()/taintBits() read the running sums, while
// the *Rescan() variants keep the original O(entries) scan bodies as
// the cross-check oracle (see ift/taintacct.hh for the invariants).

/** 2-bit-counter branch history table. */
class Bht
{
  public:
    explicit Bht(unsigned entries);

    /** Restore the freshly-constructed state, keeping the storage. */
    void reset();

    bool predictTaken(uint64_t pc) const;
    void update(uint64_t pc, bool taken, bool taint);

    uint64_t stateHash() const;
    uint32_t taintedRegCount() const { return acct_.regs; }
    uint64_t taintBits() const { return acct_.bits; }
    uint32_t taintedRegCountRescan() const;
    uint64_t taintBitsRescan() const;
    uint64_t taintTransitions() const { return acct_.transitions; }
    size_t entries() const { return counters_.size(); }

  private:
    size_t indexOf(uint64_t pc) const;
    std::vector<TV> counters_; ///< v in [0,3]
    ift::TaintAcct acct_;

  public:
    /** liveness: counters are always architecturally reachable. */
    void appendSinks(ift::SinkWriter &out) const;
};

/** Direct-mapped branch target buffer (tagged). */
class Btb
{
  public:
    explicit Btb(unsigned entries);

    /** Restore the freshly-constructed state, keeping the storage. */
    void reset();

    /** Returns true on hit; fills @p target. */
    bool lookup(uint64_t pc, TV &target) const;
    void update(uint64_t pc, TV target);
    void invalidate(uint64_t pc);

    uint64_t stateHash() const;
    uint32_t taintedRegCount() const { return acct_.regs; }
    uint64_t taintBits() const { return acct_.bits; }
    uint32_t taintedRegCountRescan() const;
    uint64_t taintBitsRescan() const;
    uint64_t taintTransitions() const { return acct_.transitions; }
    size_t entries() const { return slots_.size(); }

    void appendSinks(ift::SinkWriter &out, const char *name) const;

  private:
    struct Slot
    {
        bool valid = false;
        uint64_t tag = 0;
        TV target;
    };
    size_t indexOf(uint64_t pc) const;
    std::vector<Slot> slots_;
    /// Counts slot.target taint regardless of validity (quirk kept
    /// from the scan: invalidate() leaves stale taint visible).
    ift::TaintAcct acct_;
    /** Interned sink id, cached on first appendSinks (per name). */
    mutable ift::SinkId sink_id_ = ift::kInvalidSinkId;
};

/** Return address stack with committed/speculative copies. */
class Ras
{
  public:
    explicit Ras(unsigned entries);

    /** Restore the freshly-constructed state, keeping the storage. */
    void reset();

    /** Speculative push at fetch (calls). */
    void push(TV ret_addr);
    /** Speculative pop at fetch (returns); empty stacks predict 0. */
    TV pop();

    /** Commit-side mirror updates. */
    void commitPush(TV ret_addr);
    void commitPop();

    /**
     * Mispredict recovery. With @p partial_restore_bug (B2) only the
     * TOS pointer and the top entry are restored from the committed
     * copy; otherwise the whole stack is restored.
     */
    void recover(bool partial_restore_bug);

    int tos() const { return spec_tos_; }
    TV entry(size_t index) const { return spec_[index]; }

    uint64_t stateHash() const;
    uint32_t taintedRegCount() const { return spec_acct_.regs; }
    uint64_t taintBits() const { return spec_acct_.bits; }
    uint32_t taintedRegCountRescan() const;
    uint64_t taintBitsRescan() const;
    uint64_t taintTransitions() const { return spec_acct_.transitions; }
    size_t entries() const { return spec_.size(); }

    void appendSinks(ift::SinkWriter &out) const;

  private:
    std::vector<TV> spec_;
    std::vector<TV> committed_;
    int spec_tos_ = -1;
    int committed_tos_ = -1;
    /// Whole-stack populations (entries above the TOS count, matching
    /// the scan); the committed copy keeps its own account so a full
    /// recover() restores the sums in O(1).
    ift::TaintAcct spec_acct_;
    ift::TaintAcct committed_acct_;
};

/** Loop predictor: learns fixed trip counts of backward branches. */
class LoopPred
{
  public:
    explicit LoopPred(unsigned entries);

    /** Restore the freshly-constructed state, keeping the storage. */
    void reset();

    bool enabled() const { return !slots_.empty(); }

    /**
     * Direction override: returns true when the predictor has a
     * confident trip count for @p pc and fills @p taken.
     */
    bool predict(uint64_t pc, bool &taken) const;
    void update(uint64_t pc, bool taken, bool taint);

    uint64_t stateHash() const;
    uint32_t taintedRegCount() const { return acct_.regs; }
    uint64_t taintBits() const { return acct_.bits; }
    uint32_t taintedRegCountRescan() const;
    uint64_t taintBitsRescan() const;
    uint64_t taintTransitions() const { return acct_.transitions; }
    size_t entries() const { return slots_.size(); }

    void appendSinks(ift::SinkWriter &out) const;

  private:
    struct Slot
    {
        bool valid = false;
        uint64_t tag = 0;
        uint16_t trip = 0;       ///< learned taken-run length
        uint16_t count = 0;      ///< current run length
        uint8_t confidence = 0;  ///< confident when >= 2
        uint8_t taint = 0;
    };
    size_t indexOf(uint64_t pc) const;
    std::vector<Slot> slots_;
    /// Flat 16 taint bits per tainted slot (quirk kept from the scan).
    ift::TaintAcct acct_;
};

/** Last-target indirect jump predictor. */
class IndPred
{
  public:
    explicit IndPred(unsigned entries);

    /** Restore the freshly-constructed state, keeping the storage. */
    void reset();

    bool lookup(uint64_t pc, TV &target) const;
    void update(uint64_t pc, TV target);

    uint64_t stateHash() const;
    uint32_t taintedRegCount() const { return acct_.regs; }
    uint64_t taintBits() const { return acct_.bits; }
    uint32_t taintedRegCountRescan() const;
    uint64_t taintBitsRescan() const;
    uint64_t taintTransitions() const { return acct_.transitions; }
    size_t entries() const { return slots_.size(); }

    void appendSinks(ift::SinkWriter &out) const;

  private:
    struct Slot
    {
        bool valid = false;
        uint64_t tag = 0;
        TV target;
    };
    size_t indexOf(uint64_t pc) const;
    std::vector<Slot> slots_;
    ift::TaintAcct acct_;
};

} // namespace dejavuzz::uarch

#endif // DEJAVUZZ_UARCH_PREDICTORS_HH
