/**
 * @file
 * Functional-unit execution semantics over tainted values.
 *
 * Computes architectural results together with taint propagation via
 * the policy kernels: arithmetic goes through the data-flow cells,
 * comparisons (slt/branch conditions) through the comparison-cell
 * policy, variable shifts through the shift cell, and multiplies /
 * divides through the whole-result cell.
 */

#ifndef DEJAVUZZ_UARCH_EXEC_HH
#define DEJAVUZZ_UARCH_EXEC_HH

#include <cstdint>

#include "ift/policy.hh"
#include "ift/taint.hh"
#include "isa/instr.hh"

namespace dejavuzz::uarch {

using ift::TV;

/** Latency class of an op (cycles; unpipelined units handled upstream). */
unsigned execLatency(const isa::Instr &instr, unsigned mul_latency,
                     unsigned div_latency, unsigned fpalu_latency,
                     unsigned fdiv_latency);

/**
 * Integer/FP register-result computation for non-memory, non-control
 * ops. @p sig seeds the control-cell signal id for comparison cells.
 */
TV execArith(const isa::Instr &instr, TV rs1, TV rs2, uint64_t pc,
             ift::TaintCtx &ctx, uint32_t sig);

/** Branch condition (1-bit TV) via the comparison-cell policy. */
TV execBranchCond(const isa::Instr &instr, TV rs1, TV rs2,
                  ift::TaintCtx &ctx, uint32_t sig);

/** Effective address of a memory op (add cell). */
TV execEffAddr(const isa::Instr &instr, TV rs1);

/** Indirect jump target ((rs1 + imm) & ~1, add cell). */
TV execJalrTarget(const isa::Instr &instr, TV rs1);

} // namespace dejavuzz::uarch

#endif // DEJAVUZZ_UARCH_EXEC_HH
