#include "uarch/exec.hh"

#include <bit>

#include "util/bits.hh"

namespace dejavuzz::uarch {

using isa::Instr;
using isa::Op;

unsigned
execLatency(const Instr &instr, unsigned mul_latency,
            unsigned div_latency, unsigned fpalu_latency,
            unsigned fdiv_latency)
{
    switch (isa::opClass(instr.op)) {
      case isa::OpClass::MulDiv:
        switch (instr.op) {
          case Op::MUL: case Op::MULH: case Op::MULHU: case Op::MULW:
            return mul_latency;
          default:
            return div_latency;
        }
      case isa::OpClass::FpAlu:
        return fpalu_latency;
      case isa::OpClass::FpDiv:
        return fdiv_latency;
      default:
        return 1;
    }
}

namespace {

uint64_t
sext32v(uint64_t value)
{
    return static_cast<uint64_t>(
        static_cast<int64_t>(static_cast<int32_t>(value)));
}

TV
word(TV tv)
{
    return ift::sextCell(tv, 32);
}

double
asDouble(uint64_t bits)
{
    return std::bit_cast<double>(bits);
}

uint64_t
asBits(double value)
{
    return std::bit_cast<uint64_t>(value);
}

} // namespace

TV
execArith(const Instr &instr, TV rs1, TV rs2, uint64_t pc,
          ift::TaintCtx &ctx, uint32_t sig)
{
    using ift::addCell;
    using ift::andCell;
    using ift::mulLikeCell;
    using ift::orCell;
    using ift::shiftCell;
    using ift::subCell;
    using ift::xorCell;

    const TV imm = ift::clean(static_cast<uint64_t>(instr.imm));
    auto a = static_cast<int64_t>(rs1.v);
    auto b = static_cast<int64_t>(rs2.v);

    switch (instr.op) {
      case Op::LUI:
        return ift::clean(static_cast<uint64_t>(
            signExtend(static_cast<uint64_t>(instr.imm) << 12, 32)));
      case Op::AUIPC:
        return ift::clean(
            pc + static_cast<uint64_t>(
                     signExtend(static_cast<uint64_t>(instr.imm) << 12,
                                32)));
      case Op::JAL:
      case Op::JALR:
        return ift::clean(pc + 4);

      case Op::ADDI: return addCell(rs1, imm);
      case Op::XORI: return xorCell(rs1, imm);
      case Op::ORI:  return orCell(rs1, imm);
      case Op::ANDI: return andCell(rs1, imm);
      case Op::SLTI:
        return ctx.cmp(sig, a < instr.imm ? 1 : 0, rs1, imm);
      case Op::SLTIU:
        return ctx.cmp(sig,
                       rs1.v < static_cast<uint64_t>(instr.imm) ? 1 : 0,
                       rs1, imm);
      case Op::SLLI: return ift::shlConst(rs1, instr.imm & 63);
      case Op::SRLI: return ift::shrConst(rs1, instr.imm & 63);
      case Op::SRAI: {
        TV out = ift::shrConst(rs1, instr.imm & 63);
        out.v = static_cast<uint64_t>(a >> (instr.imm & 63));
        if ((rs1.t >> 63) & 1)
            out.t |= ~(~0ULL >> (instr.imm & 63));
        return out;
      }

      case Op::ADD: return addCell(rs1, rs2);
      case Op::SUB: return subCell(rs1, rs2);
      case Op::SLL: return shiftCell(rs1.v << (rs2.v & 63), rs1, rs2);
      case Op::SRL: return shiftCell(rs1.v >> (rs2.v & 63), rs1, rs2);
      case Op::SRA:
        return shiftCell(static_cast<uint64_t>(a >> (rs2.v & 63)), rs1,
                         rs2);
      case Op::SLT:
        return ctx.cmp(sig, a < b ? 1 : 0, rs1, rs2);
      case Op::SLTU:
        return ctx.cmp(sig, rs1.v < rs2.v ? 1 : 0, rs1, rs2);
      case Op::XOR: return xorCell(rs1, rs2);
      case Op::OR:  return orCell(rs1, rs2);
      case Op::AND: return andCell(rs1, rs2);

      case Op::ADDIW: return word(addCell(rs1, imm));
      case Op::SLLIW:
        return word(ift::shlConst(rs1, instr.imm & 31));
      case Op::SRLIW: {
        TV out = ift::truncCell(rs1, 32);
        out = ift::shrConst(out, instr.imm & 31);
        out.v = sext32v(out.v);
        return out;
      }
      case Op::SRAIW: {
        TV out;
        out.v = sext32v(static_cast<uint64_t>(
            static_cast<int32_t>(rs1.v) >> (instr.imm & 31)));
        out.t = smearLeft(rs1.t & maskLow(32));
        return out;
      }
      case Op::ADDW: return word(addCell(rs1, rs2));
      case Op::SUBW: return word(subCell(rs1, rs2));
      case Op::SLLW:
        return word(shiftCell(rs1.v << (rs2.v & 31), rs1, rs2));
      case Op::SRLW:
        return word(shiftCell(
            static_cast<uint32_t>(rs1.v) >> (rs2.v & 31), rs1, rs2));
      case Op::SRAW:
        return word(shiftCell(
            sext32v(static_cast<uint64_t>(static_cast<int32_t>(rs1.v) >>
                                          (rs2.v & 31))),
            rs1, rs2));

      case Op::MUL:
        return mulLikeCell(rs1.v * rs2.v, rs1, rs2);
      case Op::MULH:
        return mulLikeCell(
            static_cast<uint64_t>(
                (static_cast<__int128>(a) * static_cast<__int128>(b)) >>
                64),
            rs1, rs2);
      case Op::MULHU:
        return mulLikeCell(
            static_cast<uint64_t>((static_cast<unsigned __int128>(rs1.v) *
                                   static_cast<unsigned __int128>(rs2.v))
                                  >> 64),
            rs1, rs2);
      case Op::DIV: {
        uint64_t q;
        if (b == 0)
            q = ~0ULL;
        else if (a == INT64_MIN && b == -1)
            q = static_cast<uint64_t>(INT64_MIN);
        else
            q = static_cast<uint64_t>(a / b);
        return mulLikeCell(q, rs1, rs2);
      }
      case Op::DIVU:
        return mulLikeCell(rs2.v == 0 ? ~0ULL : rs1.v / rs2.v, rs1,
                           rs2);
      case Op::REM: {
        uint64_t r;
        if (b == 0)
            r = static_cast<uint64_t>(a);
        else if (a == INT64_MIN && b == -1)
            r = 0;
        else
            r = static_cast<uint64_t>(a % b);
        return mulLikeCell(r, rs1, rs2);
      }
      case Op::REMU:
        return mulLikeCell(rs2.v == 0 ? rs1.v : rs1.v % rs2.v, rs1,
                           rs2);
      case Op::MULW:
        return mulLikeCell(sext32v(rs1.v * rs2.v), rs1, rs2);
      case Op::DIVW: {
        auto aw = static_cast<int32_t>(rs1.v);
        auto bw = static_cast<int32_t>(rs2.v);
        uint64_t q;
        if (bw == 0)
            q = ~0ULL;
        else if (aw == INT32_MIN && bw == -1)
            q = sext32v(static_cast<uint32_t>(INT32_MIN));
        else
            q = sext32v(static_cast<uint32_t>(aw / bw));
        return mulLikeCell(q, rs1, rs2);
      }
      case Op::REMW: {
        auto aw = static_cast<int32_t>(rs1.v);
        auto bw = static_cast<int32_t>(rs2.v);
        uint64_t r;
        if (bw == 0)
            r = sext32v(static_cast<uint32_t>(aw));
        else if (aw == INT32_MIN && bw == -1)
            r = 0;
        else
            r = sext32v(static_cast<uint32_t>(aw % bw));
        return mulLikeCell(r, rs1, rs2);
      }

      case Op::FADD_D:
        return mulLikeCell(asBits(asDouble(rs1.v) + asDouble(rs2.v)),
                           rs1, rs2);
      case Op::FSUB_D:
        return mulLikeCell(asBits(asDouble(rs1.v) - asDouble(rs2.v)),
                           rs1, rs2);
      case Op::FMUL_D:
        return mulLikeCell(asBits(asDouble(rs1.v) * asDouble(rs2.v)),
                           rs1, rs2);
      case Op::FDIV_D:
        return mulLikeCell(asBits(asDouble(rs1.v) / asDouble(rs2.v)),
                           rs1, rs2);
      case Op::FMV_X_D:
      case Op::FMV_D_X:
        return rs1;

      case Op::CSRRW: case Op::CSRRS: case Op::CSRRC:
        return ift::clean(0);

      default:
        return ift::clean(0);
    }
}

TV
execBranchCond(const Instr &instr, TV rs1, TV rs2, ift::TaintCtx &ctx,
               uint32_t sig)
{
    auto a = static_cast<int64_t>(rs1.v);
    auto b = static_cast<int64_t>(rs2.v);
    switch (instr.op) {
      case Op::BEQ:
        return ctx.eq(sig, rs1, rs2);
      case Op::BNE: {
        TV eq = ctx.eq(sig, rs1, rs2);
        return TV{eq.v ^ 1, eq.t};
      }
      case Op::BLT:
        return ctx.cmp(sig, a < b ? 1 : 0, rs1, rs2);
      case Op::BGE:
        return ctx.cmp(sig, a >= b ? 1 : 0, rs1, rs2);
      case Op::BLTU:
        return ctx.cmp(sig, rs1.v < rs2.v ? 1 : 0, rs1, rs2);
      case Op::BGEU:
        return ctx.cmp(sig, rs1.v >= rs2.v ? 1 : 0, rs1, rs2);
      default:
        return ift::clean(0);
    }
}

TV
execEffAddr(const Instr &instr, TV rs1)
{
    return ift::addCell(rs1,
                        ift::clean(static_cast<uint64_t>(instr.imm)));
}

TV
execJalrTarget(const Instr &instr, TV rs1)
{
    TV target = ift::addCell(
        rs1, ift::clean(static_cast<uint64_t>(instr.imm)));
    target.v &= ~1ULL;
    return target;
}

} // namespace dejavuzz::uarch
