/**
 * @file
 * The out-of-order core model.
 *
 * A cycle-level RV64 out-of-order pipeline with speculative fetch
 * (BHT/BTB/FauBTB/RAS/loop/indirect predictors), register renaming
 * onto a unified physical register file, a reorder buffer with
 * delayed exception flush (the Meltdown transient window), a
 * load/store unit with memory-dependence speculation, store-to-load
 * forwarding, non-blocking D-cache with MSHR/LFB, two-level TLB, and
 * contention-prone functional units (unpipelined divide / FP divide,
 * shared fetch refill and load write-back ports).
 *
 * Every stateful structure carries taint shadows updated through the
 * CellIFT/diffIFT policy kernels, and the core is a value type: the
 * differential harness checkpoints it by copy-assignment for the
 * lockstep diffIFT redo protocol. No member may point into the core
 * itself.
 */

#ifndef DEJAVUZZ_UARCH_CORE_HH
#define DEJAVUZZ_UARCH_CORE_HH

#include <array>
#include <cstdint>
#include <vector>

#include "ift/coverage.hh"
#include "ift/liveness.hh"
#include "ift/policy.hh"
#include "ift/taint.hh"
#include "ift/taintacct.hh"
#include "ift/taintlog.hh"
#include "isa/exceptions.hh"
#include "isa/instr.hh"
#include "swapmem/memory.hh"
#include "uarch/caches.hh"
#include "uarch/config.hh"
#include "uarch/exec.hh"
#include "uarch/predictors.hh"
#include "uarch/tracelog.hh"

namespace dejavuzz::uarch {

/** Events a single tick reports to the harness. */
struct TickEvents
{
    bool swap_next = false;        ///< SWAPNEXT committed
    bool trapped = false;          ///< architectural trap flushed
    isa::ExcCause exc = isa::ExcCause::None;
    uint64_t trap_pc = 0;
};

/** One fetch-buffer slot. */
struct FetchSlot
{
    bool valid = false;
    uint64_t pc = 0;
    isa::Instr instr;
    bool pred_taken = false;
    TV pred_target;
    bool ras_pushed = false;
    bool ras_popped = false;
    isa::ExcCause fetch_exc = isa::ExcCause::None;
    uint8_t pc_taint = 0;   ///< fetched down a tainted path
};

/** Load-execution phases. */
enum class LoadPhase : uint8_t { None, Tlb, Cache, Mshr, Wb };

/** Reorder buffer entry. */
struct RobEntry
{
    bool valid = false;
    uint64_t seq = 0;
    uint64_t pc = 0;
    isa::Instr instr;

    uint8_t stage = 0;          ///< 0 waiting, 1 executing, 2 done
    LoadPhase load_phase = LoadPhase::None;
    unsigned remaining = 0;
    int mshr_idx = -1;

    TV result;
    bool has_rd = false;
    uint8_t rd_slot = 0;        ///< arch reg (fp regs at +32)
    uint16_t prf_idx = 0;
    uint16_t prf_old = 0;
    bool src1_valid = false;
    bool src2_valid = false;
    uint16_t src1_prf = 0;
    uint16_t src2_prf = 0;

    int lq = -1;
    int sq = -1;

    bool is_ctrl = false;
    bool pred_taken = false;
    TV pred_target;
    bool ras_pushed = false;
    bool ras_popped = false;
    bool actual_taken = false;
    TV actual_target;
    bool resolved = false;

    isa::ExcCause exc = isa::ExcCause::None;
    TV badaddr;

    TV addr;                    ///< memory effective address
    unsigned bytes = 0;
    bool forwarded = false;

    /** Entry field-register bundle (the Fig. 2 uopc analog). */
    TV meta;

    uint32_t dispatch_cycle = 0;
};

/** Load queue entry. */
struct LqEntry
{
    bool valid = false;
    int rob_slot = -1;
    uint64_t seq = 0;
    TV addr;
    unsigned bytes = 0;
    bool addr_ready = false;
    bool done = false;
    bool speculative = false; ///< issued past an unresolved older store
};

/** Store queue entry. */
struct SqEntry
{
    bool valid = false;
    int rob_slot = -1;
    uint64_t seq = 0;
    TV addr;
    TV data;
    unsigned bytes = 0;
    bool addr_ready = false;
};

/** Per-module taint statistics sampled each cycle. */
struct ModuleStat
{
    uint32_t tainted_regs = 0;
    uint64_t taint_bits = 0;
};

/** Contention/event counters for timing attribution (Table 5). */
struct ContentionCounters
{
    uint64_t fetch_refill_wait = 0; ///< B4: fetch blocked by refill
    uint64_t load_wb_conflict = 0;  ///< B5: wb port steal
    uint64_t fdiv_busy_wait = 0;    ///< Spectre-Rewind style
    uint64_t div_busy_wait = 0;
    uint64_t mem_port_wait = 0;
};

class Core
{
  public:
    explicit Core(const CoreConfig &config);

    /**
     * Restore the freshly-constructed state while keeping every
     * vector's storage: a pooled Core resets without allocating and
     * is bit-identical to a newly constructed one (asserted by the
     * reset-reuse tests). The differential harness reuses two pooled
     * cores across all of a campaign's iterations.
     */
    void reset();

    /** Flush the pipeline and begin fetching at @p entry. */
    void startSequence(uint64_t entry);
    /** Swap-runtime icache flush (fence.i analog). */
    void flushICache() { icache_.flush(); }

    /** Advance one cycle. */
    TickEvents tick(swapmem::Memory &mem, ift::TaintCtx &ctx,
                    TraceLog *trace);

    uint64_t cycle() const { return cycle_; }

    // --- observability --------------------------------------------------
    /**
     * Per-module taint statistics (coverage + taint log). O(kModCount)
     * assembly from the incremental accounts — no state scan.
     */
    void moduleTaintStats(
        std::array<ModuleStat, kModCount> &stats) const;

    /**
     * The original O(state) full re-scan, kept as the cross-check
     * oracle for the incremental accounts (ift/taintacct.hh).
     */
    void moduleTaintStatsRescan(
        std::array<ModuleStat, kModCount> &stats) const;

    /**
     * Cross-check the incremental accounts against a full re-scan;
     * true when every module matches. Always compiled (the default
     * build defines NDEBUG, so the randomized property test calls
     * this explicitly). Counts obs::Ctr::TaintRescanChecks.
     */
    bool verifyTaintAccounts() const;

    /** Lifetime taint-contribution transitions across all accounts. */
    uint64_t taintTransitions() const;

    /** Append one taint-log cycle record. */
    void appendTaintLog(ift::TaintLog &log) const;

    /** Feed the per-cycle coverage sample. */
    void sampleCoverage(ift::TaintCoverage &coverage,
                        const std::array<uint16_t, kModCount> &ids) const;

    /** Register this core's modules with a coverage matrix. */
    static std::array<uint16_t, kModCount>
    registerModules(ift::TaintCoverage &coverage,
                    const CoreConfig &config);

    /** Hash of the timing components (SpecDoctor's oracle). */
    uint64_t timingStateHash() const;

    /**
     * Hash of the *data* held by the timing components: the backing
     * bytes of every valid d-cache line plus the (possibly stale) LFB
     * contents. SpecDoctor's oracle sees secret values resting in
     * these arrays even when they were never encoded - its false
     * positive source (paper §6.3).
     */
    uint64_t cachedDataHash(const swapmem::Memory &mem) const;

    /** Snapshot all sink arrays for liveness analysis. */
    void enumSinks(std::vector<ift::SinkSnapshot> &out) const;

    /** Structural inventory (Table 2). */
    struct Inventory
    {
        unsigned modules = 0;
        unsigned state_regs = 0;
        uint64_t state_bits = 0;
        unsigned annotated_sinks = 0;
    };
    Inventory inventory() const;

    /** Configuration (stable after construction; non-const so the
     *  lockstep harness can checkpoint a Core by copy-assignment). */
    CoreConfig cfg;
    ContentionCounters contention;

    // --- architectural state (exposed for tests/harness) ----------------
    TV pc;
    isa::Priv priv = isa::Priv::U;

    /** Architectural view of a register (through the rename map). */
    TV archReg(unsigned index) const;

    // Pipeline structures (public: internal microarchitecture the
    // tests and the paper's analyses reach into, gem5-style).
    std::vector<FetchSlot> fetchq;
    std::vector<RobEntry> rob;
    unsigned rob_head = 0;
    unsigned rob_count = 0;
    std::array<uint16_t, 64> rename_map{};
    std::array<uint8_t, 64> rename_taint{};
    std::vector<TV> prf;
    std::vector<uint8_t> prf_busy;
    std::vector<uint8_t> prf_alloc;
    std::vector<uint16_t> prf_free;
    std::vector<LqEntry> lq;
    std::vector<SqEntry> sq;

    Bht bht;
    Btb btb;
    Btb faubtb;
    Ras ras;
    LoopPred loop;
    IndPred indpred;
    ICache icache_;
    DCache dcache;
    Tlb dtlb;
    Tlb l2tlb;

    /** Load-wait table for memory-dependence prediction. */
    std::vector<uint8_t> load_wait;

    /** FP-divide / integer-divide unit busy-until cycles. */
    uint64_t fdiv_busy_until = 0;
    uint64_t div_busy_until = 0;
    /** Operand latch of the FP divider (a taintable latch). */
    TV fdiv_latch;
    /**
     * RoB tail-pointer taint. Once a rollback with tainted flushed
     * state fires under an open control-taint gate, the pointer stays
     * tainted and every subsequent enqueue inherits a tainted enable
     * (the CellIFT explosion is monotone, Fig. 6).
     */
    TV rob_tail_taint_;

  private:
    friend class CoreTester;

    struct BtbCorrection
    {
        bool valid = false;
        uint64_t pc = 0;
        TV target;
    };

    // --- tick phases ----------------------------------------------------
    TickEvents phaseCommit(swapmem::Memory &mem, ift::TaintCtx &ctx,
                           TraceLog *trace);
    void phaseExecute(swapmem::Memory &mem, ift::TaintCtx &ctx,
                      TraceLog *trace);
    void phaseIssue(swapmem::Memory &mem, ift::TaintCtx &ctx,
                    TraceLog *trace);
    void phaseDispatch(ift::TaintCtx &ctx, TraceLog *trace);
    void phaseFetch(swapmem::Memory &mem, ift::TaintCtx &ctx);

    // --- helpers ----------------------------------------------------------
    unsigned robSlot(unsigned offset) const;
    RobEntry *robHeadEntry();
    bool robFull() const { return rob_count >= cfg.rob_entries; }
    uint64_t nextSeq() { return seq_counter_++; }

    void squashYounger(uint64_t from_seq, bool inclusive, TV redirect,
                       TV squash_taint, SquashCause cause,
                       isa::ExcCause exc, uint64_t squash_pc,
                       uint64_t spec_pc, uint32_t open_cycle,
                       ift::TaintCtx &ctx, TraceLog *trace);
    void flushAll(TV redirect, TV squash_taint, SquashCause cause,
                  isa::ExcCause exc, uint64_t squash_pc,
                  ift::TaintCtx &ctx, TraceLog *trace);
    void rollbackEntry(RobEntry &entry);
    void applyRollbackTaint(TV squash_taint, ift::TaintCtx &ctx);

    void resolveControl(RobEntry &entry, ift::TaintCtx &ctx,
                        TraceLog *trace);
    void commitPredictorUpdate(RobEntry &entry);
    void finishLoad(RobEntry &entry, swapmem::Memory &mem,
                    ift::TaintCtx &ctx);
    bool issueLoad(RobEntry &entry, swapmem::Memory &mem,
                   ift::TaintCtx &ctx);
    void predecode(FetchSlot &slot, ift::TaintCtx &ctx);

    uint64_t cycle_ = 0;
    uint64_t seq_counter_ = 1;

    // Incremental taint accounts for the container state the old
    // per-cycle scan walked (prf/rob/lq/sq plus the fetchq pc-taint
    // and rename-map taint populations). Plain values: the lockstep
    // checkpoint copy-assignment snapshots them for free, and a
    // rollback restores them together with the state they describe.
    ift::TaintAcct prf_acct_;
    ift::TaintAcct rob_acct_;
    ift::TaintAcct lq_acct_;
    ift::TaintAcct sq_acct_;
    uint32_t fetchq_taint_slots_ = 0;
    uint32_t rename_taint_regs_ = 0;

    // Per-cycle port accounting.
    unsigned alu_used_ = 0;
    unsigned mem_used_ = 0;
    unsigned wb_used_ = 0;
    bool wb_pipeline_claimed_ = false;

    // Trap machinery.
    bool trap_pending_ = false;
    unsigned trap_countdown_ = 0;
    isa::ExcCause trap_cause_ = isa::ExcCause::None;
    uint64_t trap_pc_ = 0;
    TV trap_taint_;
    uint32_t trap_open_cycle_ = 0;

    // Decode-stage illegal stall (BOOM behaviour).
    bool decode_blocked_ = false;

    // B3 race: deferred BTB correction from an indirect mispredict.
    BtbCorrection btb_correction_;

    // Statistics for trace log.
    uint8_t enq_this_cycle_ = 0;
    uint8_t commit_this_cycle_ = 0;
};

} // namespace dejavuzz::uarch

#endif // DEJAVUZZ_UARCH_CORE_HH
