#include "uarch/predictors.hh"

#include "util/logging.hh"

namespace dejavuzz::uarch {

namespace {

uint64_t
hashTv(uint64_t hash, const TV &tv)
{
    return fnv1a(hash, tv.v);
}

ift::SinkSnapshot &
nextSink(ift::SinkWriter &out, ift::SinkId id, size_t entries)
{
    ift::SinkSnapshot &sink = out.next(id, true);
    sink.taint.assign(entries, 0);
    sink.live.assign(entries, 1);
    return sink;
}

/** Population contribution of one TV entry. */
ift::TaintContrib
tvContrib(const TV &tv)
{
    return {tv.t != 0 ? 1u : 0u,
            static_cast<uint64_t>(popcount64(tv.t))};
}

} // namespace

// --- Bht ---------------------------------------------------------------

Bht::Bht(unsigned entries)
{
    dv_assert(isPow2(entries));
    counters_.resize(entries);
    reset();
}

void
Bht::reset()
{
    counters_.assign(counters_.size(), TV{1, 0}); // weakly not-taken
    acct_.reset();
}

size_t
Bht::indexOf(uint64_t pc) const
{
    return (pc >> 2) & (counters_.size() - 1);
}

bool
Bht::predictTaken(uint64_t pc) const
{
    return counters_[indexOf(pc)].v >= 2;
}

void
Bht::update(uint64_t pc, bool taken, bool taint)
{
    TV &counter = counters_[indexOf(pc)];
    if (taken && counter.v < 3)
        counter.v += 1;
    else if (!taken && counter.v > 0)
        counter.v -= 1;
    if (taint) {
        ift::TaintContrib before = tvContrib(counter);
        counter.t |= 3;
        acct_.apply(before, tvContrib(counter));
    }
}

uint64_t
Bht::stateHash() const
{
    uint64_t hash = kFnvOffset;
    for (const TV &counter : counters_)
        hash = hashTv(hash, counter);
    return hash;
}

uint32_t
Bht::taintedRegCountRescan() const
{
    uint32_t n = 0;
    for (const TV &counter : counters_)
        n += counter.t != 0;
    return n;
}

uint64_t
Bht::taintBitsRescan() const
{
    uint64_t n = 0;
    for (const TV &counter : counters_)
        n += popcount64(counter.t);
    return n;
}

void
Bht::appendSinks(ift::SinkWriter &out) const
{
    static const ift::SinkId kId = ift::internSink("bht", "counters");
    auto &sink = nextSink(out, kId, counters_.size());
    for (size_t i = 0; i < counters_.size(); ++i)
        sink.taint[i] = counters_[i].t;
}

// --- Btb ---------------------------------------------------------------

Btb::Btb(unsigned entries)
{
    dv_assert(entries == 0 || isPow2(entries));
    slots_.resize(entries);
}

void
Btb::reset()
{
    slots_.assign(slots_.size(), Slot{});
    acct_.reset();
}

size_t
Btb::indexOf(uint64_t pc) const
{
    return (pc >> 2) & (slots_.size() - 1);
}

bool
Btb::lookup(uint64_t pc, TV &target) const
{
    if (slots_.empty())
        return false;
    const Slot &slot = slots_[indexOf(pc)];
    if (!slot.valid || slot.tag != pc)
        return false;
    target = slot.target;
    return true;
}

void
Btb::update(uint64_t pc, TV target)
{
    if (slots_.empty())
        return;
    Slot &slot = slots_[indexOf(pc)];
    ift::TaintContrib before = tvContrib(slot.target);
    slot.valid = true;
    slot.tag = pc;
    slot.target = target;
    acct_.apply(before, tvContrib(slot.target));
}

void
Btb::invalidate(uint64_t pc)
{
    if (slots_.empty())
        return;
    Slot &slot = slots_[indexOf(pc)];
    if (slot.valid && slot.tag == pc)
        slot.valid = false;
}

uint64_t
Btb::stateHash() const
{
    uint64_t hash = kFnvOffset;
    for (const Slot &slot : slots_) {
        hash = fnv1a(hash, slot.valid);
        hash = fnv1a(hash, slot.tag);
        hash = fnv1a(hash, slot.target.v);
    }
    return hash;
}

uint32_t
Btb::taintedRegCountRescan() const
{
    uint32_t n = 0;
    for (const Slot &slot : slots_)
        n += slot.target.t != 0;
    return n;
}

uint64_t
Btb::taintBitsRescan() const
{
    uint64_t n = 0;
    for (const Slot &slot : slots_)
        n += popcount64(slot.target.t);
    return n;
}

void
Btb::appendSinks(ift::SinkWriter &out, const char *name) const
{
    if (sink_id_ == ift::kInvalidSinkId)
        sink_id_ = ift::internSink(name, "targets");
    auto &sink = nextSink(out, sink_id_, slots_.size());
    for (size_t i = 0; i < slots_.size(); ++i) {
        sink.taint[i] = slots_[i].target.t;
        sink.live[i] = slots_[i].valid ? 1 : 0;
    }
}

// --- Ras ---------------------------------------------------------------

Ras::Ras(unsigned entries)
{
    spec_.resize(entries);
    committed_.resize(entries);
    reset();
}

void
Ras::reset()
{
    spec_.assign(spec_.size(), TV{});
    committed_.assign(committed_.size(), TV{});
    spec_tos_ = -1;
    committed_tos_ = -1;
    spec_acct_.reset();
    committed_acct_.reset();
}

void
Ras::push(TV ret_addr)
{
    if (spec_.empty())
        return;
    spec_tos_ = (spec_tos_ + 1) % static_cast<int>(spec_.size());
    ift::TaintContrib before = tvContrib(spec_[spec_tos_]);
    spec_[spec_tos_] = ret_addr;
    spec_acct_.apply(before, tvContrib(ret_addr));
}

TV
Ras::pop()
{
    if (spec_.empty() || spec_tos_ < 0)
        return TV{};
    TV top = spec_[spec_tos_];
    spec_tos_ -= 1;
    return top;
}

void
Ras::commitPush(TV ret_addr)
{
    if (committed_.empty())
        return;
    committed_tos_ =
        (committed_tos_ + 1) % static_cast<int>(committed_.size());
    ift::TaintContrib before = tvContrib(committed_[committed_tos_]);
    committed_[committed_tos_] = ret_addr;
    committed_acct_.apply(before, tvContrib(ret_addr));
}

void
Ras::commitPop()
{
    if (committed_.empty() || committed_tos_ < 0)
        return;
    committed_tos_ -= 1;
}

void
Ras::recover(bool partial_restore_bug)
{
    if (spec_.empty())
        return;
    spec_tos_ = committed_tos_;
    if (partial_restore_bug) {
        // B2 Phantom-RSB: only the top entry comes back; everything
        // the transient calls overwrote below the TOS stays corrupted.
        if (spec_tos_ >= 0) {
            ift::TaintContrib before = tvContrib(spec_[spec_tos_]);
            spec_[spec_tos_] = committed_[spec_tos_];
            spec_acct_.apply(before, tvContrib(spec_[spec_tos_]));
        }
    } else {
        spec_ = committed_;
        // Bulk restore: adopt the committed copy's sums wholesale.
        if (spec_acct_.regs != committed_acct_.regs ||
            spec_acct_.bits != committed_acct_.bits)
            ++spec_acct_.transitions;
        spec_acct_.regs = committed_acct_.regs;
        spec_acct_.bits = committed_acct_.bits;
    }
}

uint64_t
Ras::stateHash() const
{
    uint64_t hash = kFnvOffset;
    hash = fnv1a(hash, static_cast<uint64_t>(spec_tos_ + 1));
    for (const TV &entry : spec_)
        hash = hashTv(hash, entry);
    return hash;
}

uint32_t
Ras::taintedRegCountRescan() const
{
    uint32_t n = 0;
    for (const TV &entry : spec_)
        n += entry.t != 0;
    return n;
}

uint64_t
Ras::taintBitsRescan() const
{
    uint64_t n = 0;
    for (const TV &entry : spec_)
        n += popcount64(entry.t);
    return n;
}

void
Ras::appendSinks(ift::SinkWriter &out) const
{
    static const ift::SinkId kId = ift::internSink("ras", "stack");
    auto &sink = nextSink(out, kId, spec_.size());
    for (size_t i = 0; i < spec_.size(); ++i) {
        sink.taint[i] = spec_[i].t;
        // Entries at or below the TOS will be consumed by future
        // returns => live; entries above the TOS are dead.
        sink.live[i] = (static_cast<int>(i) <= spec_tos_) ? 1 : 0;
    }
}

// --- LoopPred ----------------------------------------------------------

LoopPred::LoopPred(unsigned entries)
{
    dv_assert(entries == 0 || isPow2(entries));
    slots_.resize(entries);
}

void
LoopPred::reset()
{
    slots_.assign(slots_.size(), Slot{});
    acct_.reset();
}

size_t
LoopPred::indexOf(uint64_t pc) const
{
    return (pc >> 2) & (slots_.size() - 1);
}

bool
LoopPred::predict(uint64_t pc, bool &taken) const
{
    if (slots_.empty())
        return false;
    const Slot &slot = slots_[indexOf(pc)];
    if (!slot.valid || slot.tag != pc || slot.confidence < 2)
        return false;
    taken = slot.count + 1 < slot.trip;
    return true;
}

void
LoopPred::update(uint64_t pc, bool taken, bool taint)
{
    if (slots_.empty())
        return;
    Slot &slot = slots_[indexOf(pc)];
    ift::TaintContrib before{slot.taint != 0 ? 1u : 0u,
                             slot.taint != 0 ? 16u : 0u};
    if (!slot.valid || slot.tag != pc) {
        slot = Slot{};
        slot.valid = true;
        slot.tag = pc;
    }
    if (taint)
        slot.taint = 1;
    acct_.apply(before, {slot.taint != 0 ? 1u : 0u,
                         slot.taint != 0 ? 16u : 0u});
    if (taken) {
        slot.count += 1;
        return;
    }
    // Loop exit: learn/confirm the trip count.
    uint16_t trip = slot.count + 1;
    if (slot.trip == trip && slot.confidence < 3)
        slot.confidence += 1;
    else if (slot.trip != trip)
        slot.confidence = 0;
    slot.trip = trip;
    slot.count = 0;
}

uint64_t
LoopPred::stateHash() const
{
    uint64_t hash = kFnvOffset;
    for (const Slot &slot : slots_) {
        hash = fnv1a(hash, slot.valid);
        hash = fnv1a(hash, slot.tag);
        hash = fnv1a(hash, (static_cast<uint64_t>(slot.trip) << 32) |
                               (static_cast<uint64_t>(slot.count) << 8) |
                               slot.confidence);
    }
    return hash;
}

uint32_t
LoopPred::taintedRegCountRescan() const
{
    uint32_t n = 0;
    for (const Slot &slot : slots_)
        n += slot.taint != 0;
    return n;
}

uint64_t
LoopPred::taintBitsRescan() const
{
    uint64_t n = 0;
    for (const Slot &slot : slots_)
        n += slot.taint != 0 ? 16 : 0;
    return n;
}

void
LoopPred::appendSinks(ift::SinkWriter &out) const
{
    if (slots_.empty())
        return;
    static const ift::SinkId kId = ift::internSink("loop", "slots");
    auto &sink = nextSink(out, kId, slots_.size());
    for (size_t i = 0; i < slots_.size(); ++i) {
        sink.taint[i] = slots_[i].taint ? 1 : 0;
        sink.live[i] = slots_[i].valid ? 1 : 0;
    }
}

// --- IndPred -----------------------------------------------------------

IndPred::IndPred(unsigned entries)
{
    dv_assert(entries == 0 || isPow2(entries));
    slots_.resize(entries);
}

void
IndPred::reset()
{
    slots_.assign(slots_.size(), Slot{});
    acct_.reset();
}

size_t
IndPred::indexOf(uint64_t pc) const
{
    return (pc >> 2) & (slots_.size() - 1);
}

bool
IndPred::lookup(uint64_t pc, TV &target) const
{
    if (slots_.empty())
        return false;
    const Slot &slot = slots_[indexOf(pc)];
    if (!slot.valid || slot.tag != pc)
        return false;
    target = slot.target;
    return true;
}

void
IndPred::update(uint64_t pc, TV target)
{
    if (slots_.empty())
        return;
    Slot &slot = slots_[indexOf(pc)];
    ift::TaintContrib before = tvContrib(slot.target);
    slot.valid = true;
    slot.tag = pc;
    slot.target = target;
    acct_.apply(before, tvContrib(slot.target));
}

uint64_t
IndPred::stateHash() const
{
    uint64_t hash = kFnvOffset;
    for (const Slot &slot : slots_) {
        hash = fnv1a(hash, slot.valid);
        hash = fnv1a(hash, slot.tag);
        hash = fnv1a(hash, slot.target.v);
    }
    return hash;
}

uint32_t
IndPred::taintedRegCountRescan() const
{
    uint32_t n = 0;
    for (const Slot &slot : slots_)
        n += slot.target.t != 0;
    return n;
}

uint64_t
IndPred::taintBitsRescan() const
{
    uint64_t n = 0;
    for (const Slot &slot : slots_)
        n += popcount64(slot.target.t);
    return n;
}

void
IndPred::appendSinks(ift::SinkWriter &out) const
{
    static const ift::SinkId kId = ift::internSink("indpred", "targets");
    auto &sink = nextSink(out, kId, slots_.size());
    for (size_t i = 0; i < slots_.size(); ++i) {
        sink.taint[i] = slots_[i].target.t;
        sink.live[i] = slots_[i].valid ? 1 : 0;
    }
}

} // namespace dejavuzz::uarch
