/**
 * @file
 * Cache hierarchy models: ICache (tags + one refill engine), DCache
 * (tags + per-line taint), MSHRs and the Line Fill Buffer, and the
 * two-level TLB.
 *
 * The LFB is the paper's flagship liveness example (§3.1 C2-2): after
 * a refill completes, the MSHR flips its state register to invalid
 * but the LFB data - possibly carrying secret taint - is not cleared.
 * The LFB sink is annotated with the MSHR valid vector, so liveness
 * analysis filters those stale taints.
 */

#ifndef DEJAVUZZ_UARCH_CACHES_HH
#define DEJAVUZZ_UARCH_CACHES_HH

#include <cstdint>
#include <vector>

#include "ift/liveness.hh"
#include "ift/taint.hh"
#include "ift/taintacct.hh"
#include "util/bits.hh"

namespace dejavuzz::uarch {

using ift::TV;

// Each cache structure keeps ift::TaintAcct running sums next to its
// storage; taintedRegCount()/taintBits() are O(1) reads and the
// *Rescan() variants keep the original scan bodies as the cross-check
// oracle (see ift/taintacct.hh).

constexpr uint64_t kLineBytes = 64;

inline uint64_t
lineOf(uint64_t addr)
{
    return addr / kLineBytes;
}

/** Direct-mapped instruction cache with a single refill engine. */
class ICache
{
  public:
    explicit ICache(unsigned lines, unsigned miss_latency);

    /** Restore the freshly-constructed state, keeping the storage. */
    void reset();

    /** Tag lookup only (contents come from backing memory). */
    bool hit(uint64_t addr) const;

    /** True when the refill engine is busy (B4 contention point). */
    bool refillBusy() const { return refill_remaining_ > 0; }
    uint64_t refillLine() const { return refill_line_; }

    /** Start a refill for @p addr; returns false if the engine is busy. */
    bool startRefill(uint64_t addr, bool addr_tainted);

    /** Advance one cycle; installs the line when the refill finishes. */
    void tick();

    /** Abandon an in-flight refill (fixed-B4 behaviour on squash). */
    void cancelRefill() { refill_remaining_ = 0; }

    /** fence.i / swap-runtime flush. */
    void flush();

    uint64_t stateHash() const;
    uint32_t taintedRegCount() const { return acct_.regs; }
    uint64_t taintBits() const { return acct_.bits; }
    uint32_t taintedRegCountRescan() const;
    uint64_t taintBitsRescan() const;
    uint64_t taintTransitions() const { return acct_.transitions; }
    size_t lines() const { return tags_.size(); }

    void appendSinks(ift::SinkWriter &out) const;

    /** Cycles the refill engine was busy (timing attribution). */
    uint64_t busy_cycles = 0;

  private:
    struct Line
    {
        bool valid = false;
        uint64_t tag = 0;
        uint8_t taint = 0; ///< line installed by a tainted fetch path
    };
    size_t indexOf(uint64_t line) const;

    std::vector<Line> tags_;
    /// Contribution per tainted line: {1 reg, 8 bits} — the derived
    /// bits=regs*8 semantics of the original scan.
    ift::TaintAcct acct_;
    unsigned miss_latency_;
    unsigned refill_remaining_ = 0;
    uint64_t refill_line_ = 0;
    bool refill_taint_ = false;
};

/** One miss status holding register. */
struct MshrEntry
{
    bool valid = false;
    uint64_t line = 0;
    unsigned remaining = 0;
    TV addr;               ///< full (possibly tainted) request address
    int lfb_index = -1;
    bool faulting = false; ///< refill raced a fault; do not install
    bool addr_ctl = false; ///< tainted-address control gate was open
};

/** One line fill buffer entry; data persists after the MSHR dies. */
struct LfbEntry
{
    uint64_t line = 0;
    TV data;               ///< representative refilled data (+taint)
    // No valid bit of its own: liveness comes from the owning MSHR,
    // exactly the paper's mshr_valid_vec annotation.
};

/**
 * Direct-mapped write-through data cache with MSHRs and an LFB.
 * Line data lives in backing memory; the cache tracks tags, per-line
 * taint and timing.
 */
class DCache
{
  public:
    DCache(unsigned lines, unsigned mshrs, unsigned lfbs,
           unsigned hit_latency, unsigned miss_latency);

    /** Restore the freshly-constructed state, keeping the storage. */
    void reset();

    bool hit(uint64_t addr) const;
    unsigned hitLatency() const { return hit_latency_; }

    /** Taint summary of the line containing @p addr (0 on miss). */
    uint64_t lineTaint(uint64_t addr) const;

    /**
     * Allocate an MSHR+LFB pair for a missing @p addr. @p addr_ctl is
     * the Table-1 memory-write control gate: when true, the installed
     * line is fully tainted by the (diverging) tainted address.
     * Returns the MSHR index or -1 when none is free.
     */
    int allocMshr(TV addr, bool addr_ctl);

    /** MSHR holding @p addr's line, or -1. */
    int findMshr(uint64_t addr) const;
    const MshrEntry &mshr(int index) const { return mshrs_[index]; }
    bool mshrDone(int index) const;

    /**
     * Advance refills one cycle. Completed refills install the line
     * (tag + taint), write the refilled data into the LFB, and retire
     * the MSHR - leaving the (possibly tainted) LFB data dead.
     */
    void tick(const std::vector<TV> &refill_data);

    /** Store hit update: merge taint into the line (write-through). */
    void storeUpdate(uint64_t addr, TV data);

    /** Line numbers of all valid lines (for data-state hashing). */
    void validLines(std::vector<uint64_t> &lines) const;
    /** Raw LFB data values folded into a hash (stale data included). */
    uint64_t lfbDataHash() const;

    /** Invalidate everything (not used by swaps; test hook). */
    void flush();

    uint64_t stateHash() const;
    /// cache lines with taint (O(1) running sum)
    uint32_t taintedRegCount() const { return line_acct_.regs; }
    uint64_t taintBits() const { return line_acct_.bits; }
    uint32_t taintedRegCountRescan() const;
    uint64_t taintBitsRescan() const;
    size_t lines() const { return tags_.size(); }
    size_t mshrCount() const { return mshrs_.size(); }

    /** mshr/lfb module stats (reported as separate modules). */
    uint32_t mshrTaintedRegCount() const { return mshr_acct_.regs; }
    uint64_t mshrTaintBits() const { return mshr_acct_.bits; }
    uint32_t mshrTaintedRegCountRescan() const;
    uint64_t mshrTaintBitsRescan() const;
    uint32_t lfbTaintedRegCount() const { return lfb_acct_.regs; }
    uint64_t lfbTaintBits() const { return lfb_acct_.bits; }
    uint32_t lfbTaintedRegCountRescan() const;
    uint64_t lfbTaintBitsRescan() const;
    uint64_t
    taintTransitions() const
    {
        return line_acct_.transitions + mshr_acct_.transitions +
               lfb_acct_.transitions;
    }

    void appendSinks(ift::SinkWriter &out) const;

    uint64_t busy_cycles = 0;

  private:
    struct Line
    {
        bool valid = false;
        uint64_t tag = 0;
        uint64_t taint = 0; ///< OR of taints stored into the line
    };
    size_t indexOf(uint64_t line) const;

    std::vector<Line> tags_;
    std::vector<MshrEntry> mshrs_;
    std::vector<LfbEntry> lfbs_;
    std::vector<uint8_t> lfb_owner_valid_; ///< mshr_valid_vec analog
    ift::TaintAcct line_acct_;
    /// Valid-gated (a retired MSHR stops counting) — unlike the LFB
    /// account, which keeps counting stale data by design (C2-2).
    ift::TaintAcct mshr_acct_;
    ift::TaintAcct lfb_acct_;
    unsigned hit_latency_;
    unsigned miss_latency_;
};

/** Fully-associative TLB level. */
class Tlb
{
  public:
    Tlb(unsigned entries, const char *name);

    /** Restore the freshly-constructed state, keeping the storage. */
    void reset();

    bool hit(uint64_t vpn) const;
    void insert(TV vpn);
    void flush();

    uint64_t stateHash() const;
    uint32_t taintedRegCount() const { return acct_.regs; }
    uint64_t taintBits() const { return acct_.bits; }
    uint32_t taintedRegCountRescan() const;
    uint64_t taintBitsRescan() const;
    uint64_t taintTransitions() const { return acct_.transitions; }
    size_t entries() const { return slots_.size(); }

    void appendSinks(ift::SinkWriter &out) const;

  private:
    struct Slot
    {
        bool valid = false;
        TV vpn;
    };
    std::vector<Slot> slots_;
    /// Counts vpn taint regardless of validity (scan quirk kept).
    ift::TaintAcct acct_;
    const char *name_;
    size_t next_victim_ = 0;
    /** Interned sink id, cached on first appendSinks. */
    mutable ift::SinkId sink_id_ = ift::kInvalidSinkId;
};

} // namespace dejavuzz::uarch

#endif // DEJAVUZZ_UARCH_CACHES_HH
