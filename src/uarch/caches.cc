#include "uarch/caches.hh"

#include "util/logging.hh"

namespace dejavuzz::uarch {

namespace {

/** Population contribution of one TV-carrying entry. */
ift::TaintContrib
tvContrib(const TV &tv)
{
    return {tv.t != 0 ? 1u : 0u,
            static_cast<uint64_t>(popcount64(tv.t))};
}

ift::TaintContrib
maskContrib(uint64_t taint)
{
    return {taint != 0 ? 1u : 0u,
            static_cast<uint64_t>(popcount64(taint))};
}

} // namespace

// --- ICache ------------------------------------------------------------

ICache::ICache(unsigned lines, unsigned miss_latency)
    : miss_latency_(miss_latency)
{
    dv_assert(isPow2(lines));
    tags_.resize(lines);
}

void
ICache::reset()
{
    tags_.assign(tags_.size(), Line{});
    acct_.reset();
    refill_remaining_ = 0;
    refill_line_ = 0;
    refill_taint_ = false;
    busy_cycles = 0;
}

size_t
ICache::indexOf(uint64_t line) const
{
    return line & (tags_.size() - 1);
}

bool
ICache::hit(uint64_t addr) const
{
    uint64_t line = lineOf(addr);
    const Line &slot = tags_[indexOf(line)];
    return slot.valid && slot.tag == line;
}

bool
ICache::startRefill(uint64_t addr, bool addr_tainted)
{
    if (refillBusy())
        return false;
    refill_line_ = lineOf(addr);
    refill_remaining_ = miss_latency_;
    refill_taint_ = addr_tainted;
    return true;
}

void
ICache::tick()
{
    if (refill_remaining_ == 0)
        return;
    ++busy_cycles;
    if (--refill_remaining_ == 0) {
        Line &slot = tags_[indexOf(refill_line_)];
        ift::TaintContrib before{slot.taint != 0 ? 1u : 0u,
                                 slot.taint != 0 ? 8u : 0u};
        slot.valid = true;
        slot.tag = refill_line_;
        slot.taint = refill_taint_ ? 1 : 0;
        acct_.apply(before, {slot.taint != 0 ? 1u : 0u,
                             slot.taint != 0 ? 8u : 0u});
    }
}

void
ICache::flush()
{
    for (Line &slot : tags_)
        slot = Line{};
    acct_.zero();
    refill_remaining_ = 0;
}

uint64_t
ICache::stateHash() const
{
    uint64_t hash = kFnvOffset;
    for (const Line &slot : tags_) {
        hash = fnv1a(hash, slot.valid);
        hash = fnv1a(hash, slot.tag);
    }
    return hash;
}

uint32_t
ICache::taintedRegCountRescan() const
{
    uint32_t n = 0;
    for (const Line &slot : tags_)
        n += slot.taint != 0;
    return n;
}

uint64_t
ICache::taintBitsRescan() const
{
    // A tainted line tag stands for a whole line of secret-steered
    // fetch state.
    return static_cast<uint64_t>(taintedRegCountRescan()) * 8;
}

void
ICache::appendSinks(ift::SinkWriter &out) const
{
    static const ift::SinkId kId = ift::internSink("icache", "tags");
    ift::SinkSnapshot &sink = out.next(kId, true);
    sink.taint.resize(tags_.size());
    sink.live.resize(tags_.size());
    for (size_t i = 0; i < tags_.size(); ++i) {
        sink.taint[i] = tags_[i].taint;
        sink.live[i] = tags_[i].valid ? 1 : 0;
    }
}

// --- DCache ------------------------------------------------------------

DCache::DCache(unsigned lines, unsigned mshrs, unsigned lfbs,
               unsigned hit_latency, unsigned miss_latency)
    : hit_latency_(hit_latency), miss_latency_(miss_latency)
{
    dv_assert(isPow2(lines));
    dv_assert(lfbs >= mshrs);
    tags_.resize(lines);
    mshrs_.resize(mshrs);
    lfbs_.resize(lfbs);
    lfb_owner_valid_.assign(lfbs, 0);
}

void
DCache::reset()
{
    tags_.assign(tags_.size(), Line{});
    mshrs_.assign(mshrs_.size(), MshrEntry{});
    lfbs_.assign(lfbs_.size(), LfbEntry{});
    std::fill(lfb_owner_valid_.begin(), lfb_owner_valid_.end(), 0);
    line_acct_.reset();
    mshr_acct_.reset();
    lfb_acct_.reset();
    busy_cycles = 0;
}

size_t
DCache::indexOf(uint64_t line) const
{
    return line & (tags_.size() - 1);
}

bool
DCache::hit(uint64_t addr) const
{
    uint64_t line = lineOf(addr);
    const Line &slot = tags_[indexOf(line)];
    return slot.valid && slot.tag == line;
}

uint64_t
DCache::lineTaint(uint64_t addr) const
{
    uint64_t line = lineOf(addr);
    const Line &slot = tags_[indexOf(line)];
    return (slot.valid && slot.tag == line) ? slot.taint : 0;
}

int
DCache::allocMshr(TV addr, bool addr_ctl)
{
    uint64_t line = lineOf(addr.v);
    // Already pending?
    int existing = findMshr(addr.v);
    if (existing >= 0)
        return existing;
    for (size_t i = 0; i < mshrs_.size(); ++i) {
        if (mshrs_[i].valid)
            continue;
        MshrEntry &entry = mshrs_[i];
        // Invalid entries contribute nothing, so "before" is zero.
        entry.valid = true;
        entry.line = line;
        entry.remaining = miss_latency_;
        entry.addr = addr;
        entry.lfb_index = static_cast<int>(i); // 1:1 MSHR->LFB pairing
        entry.faulting = false;
        entry.addr_ctl = addr_ctl;
        lfb_owner_valid_[i] = 1;
        mshr_acct_.apply({}, tvContrib(entry.addr));
        return static_cast<int>(i);
    }
    return -1;
}

int
DCache::findMshr(uint64_t addr) const
{
    uint64_t line = lineOf(addr);
    for (size_t i = 0; i < mshrs_.size(); ++i) {
        if (mshrs_[i].valid && mshrs_[i].line == line)
            return static_cast<int>(i);
    }
    return -1;
}

bool
DCache::mshrDone(int index) const
{
    return !mshrs_[index].valid;
}

void
DCache::tick(const std::vector<TV> &refill_data)
{
    bool any_busy = false;
    for (size_t i = 0; i < mshrs_.size(); ++i) {
        MshrEntry &entry = mshrs_[i];
        if (!entry.valid)
            continue;
        any_busy = true;
        if (--entry.remaining != 0)
            continue;
        // Refill complete: install the line and park the data in the
        // LFB. The MSHR then invalidates itself - its valid bit is the
        // LFB entry's liveness signal, so the (possibly secret-
        // tainted) LFB data is now dead but still present.
        TV data = i < refill_data.size() ? refill_data[i] : TV{};
        if (!entry.faulting) {
            Line &slot = tags_[indexOf(entry.line)];
            ift::TaintContrib before = maskContrib(slot.taint);
            slot.valid = true;
            slot.tag = entry.line;
            slot.taint = data.t | (entry.addr_ctl ? ~0ULL : 0);
            line_acct_.apply(before, maskContrib(slot.taint));
        }
        LfbEntry &lfb = lfbs_[entry.lfb_index];
        ift::TaintContrib lfb_before = tvContrib(lfb.data);
        lfb.line = entry.line;
        lfb.data = data;
        lfb_acct_.apply(lfb_before, tvContrib(lfb.data));
        lfb_owner_valid_[entry.lfb_index] = 0;
        // Retiring the valid-gated MSHR drops its contribution.
        mshr_acct_.apply(tvContrib(entry.addr), {});
        entry.valid = false;
    }
    if (any_busy)
        ++busy_cycles;
}

void
DCache::storeUpdate(uint64_t addr, TV data)
{
    uint64_t line = lineOf(addr);
    Line &slot = tags_[indexOf(line)];
    if (slot.valid && slot.tag == line) {
        ift::TaintContrib before = maskContrib(slot.taint);
        slot.taint |= data.t;
        line_acct_.apply(before, maskContrib(slot.taint));
    }
}

void
DCache::validLines(std::vector<uint64_t> &lines) const
{
    lines.clear();
    for (const Line &slot : tags_) {
        if (slot.valid)
            lines.push_back(slot.tag);
    }
}

uint64_t
DCache::lfbDataHash() const
{
    uint64_t hash = kFnvOffset;
    for (const LfbEntry &entry : lfbs_) {
        hash = fnv1a(hash, entry.line);
        hash = fnv1a(hash, entry.data.v);
    }
    return hash;
}

void
DCache::flush()
{
    for (Line &slot : tags_)
        slot = Line{};
    for (MshrEntry &entry : mshrs_)
        entry = MshrEntry{};
    for (LfbEntry &entry : lfbs_)
        entry = LfbEntry{};
    std::fill(lfb_owner_valid_.begin(), lfb_owner_valid_.end(), 0);
    line_acct_.zero();
    mshr_acct_.zero();
    lfb_acct_.zero();
}

uint64_t
DCache::stateHash() const
{
    uint64_t hash = kFnvOffset;
    for (const Line &slot : tags_) {
        hash = fnv1a(hash, slot.valid);
        hash = fnv1a(hash, slot.tag);
    }
    return hash;
}

uint32_t
DCache::taintedRegCountRescan() const
{
    uint32_t n = 0;
    for (const Line &slot : tags_)
        n += slot.taint != 0;
    return n;
}

uint64_t
DCache::taintBitsRescan() const
{
    uint64_t n = 0;
    for (const Line &slot : tags_)
        n += popcount64(slot.taint);
    return n;
}

uint32_t
DCache::mshrTaintedRegCountRescan() const
{
    uint32_t n = 0;
    for (const MshrEntry &entry : mshrs_)
        n += entry.valid && entry.addr.t != 0;
    return n;
}

uint64_t
DCache::mshrTaintBitsRescan() const
{
    uint64_t n = 0;
    for (const MshrEntry &entry : mshrs_) {
        if (entry.valid)
            n += popcount64(entry.addr.t);
    }
    return n;
}

uint32_t
DCache::lfbTaintedRegCountRescan() const
{
    uint32_t n = 0;
    for (const LfbEntry &entry : lfbs_)
        n += entry.data.t != 0;
    return n;
}

uint64_t
DCache::lfbTaintBitsRescan() const
{
    uint64_t n = 0;
    for (const LfbEntry &entry : lfbs_)
        n += popcount64(entry.data.t);
    return n;
}

void
DCache::appendSinks(ift::SinkWriter &out) const
{
    {
        static const ift::SinkId kId =
            ift::internSink("dcache", "lines");
        ift::SinkSnapshot &sink = out.next(kId, true);
        sink.taint.resize(tags_.size());
        sink.live.resize(tags_.size());
        for (size_t i = 0; i < tags_.size(); ++i) {
            sink.taint[i] = tags_[i].taint;
            sink.live[i] = tags_[i].valid ? 1 : 0;
        }
    }
    {
        // (* liveness_mask = "mshr_valid_vec" *) reg lb [..] - the
        // paper's own example annotation.
        static const ift::SinkId kId = ift::internSink("lfb", "lb");
        ift::SinkSnapshot &sink = out.next(kId, true);
        sink.taint.resize(lfbs_.size());
        sink.live.resize(lfbs_.size());
        for (size_t i = 0; i < lfbs_.size(); ++i) {
            sink.taint[i] = lfbs_[i].data.t;
            sink.live[i] = lfb_owner_valid_[i];
        }
    }
}

// --- Tlb ---------------------------------------------------------------

Tlb::Tlb(unsigned entries, const char *name) : name_(name)
{
    slots_.resize(entries);
}

void
Tlb::reset()
{
    slots_.assign(slots_.size(), Slot{});
    acct_.reset();
    next_victim_ = 0;
}

bool
Tlb::hit(uint64_t vpn) const
{
    for (const Slot &slot : slots_) {
        if (slot.valid && slot.vpn.v == vpn)
            return true;
    }
    return false;
}

void
Tlb::insert(TV vpn)
{
    for (Slot &slot : slots_) {
        if (slot.valid && slot.vpn.v == vpn.v) {
            ift::TaintContrib before = tvContrib(slot.vpn);
            slot.vpn.t |= vpn.t;
            acct_.apply(before, tvContrib(slot.vpn));
            return;
        }
    }
    Slot &victim = slots_[next_victim_];
    next_victim_ = (next_victim_ + 1) % slots_.size();
    ift::TaintContrib before = tvContrib(victim.vpn);
    victim.valid = true;
    victim.vpn = vpn;
    acct_.apply(before, tvContrib(victim.vpn));
}

void
Tlb::flush()
{
    for (Slot &slot : slots_)
        slot = Slot{};
    acct_.zero();
    next_victim_ = 0;
}

uint64_t
Tlb::stateHash() const
{
    uint64_t hash = kFnvOffset;
    for (const Slot &slot : slots_) {
        hash = fnv1a(hash, slot.valid);
        hash = fnv1a(hash, slot.vpn.v);
    }
    return hash;
}

uint32_t
Tlb::taintedRegCountRescan() const
{
    uint32_t n = 0;
    for (const Slot &slot : slots_)
        n += slot.vpn.t != 0;
    return n;
}

uint64_t
Tlb::taintBitsRescan() const
{
    uint64_t n = 0;
    for (const Slot &slot : slots_)
        n += popcount64(slot.vpn.t);
    return n;
}

void
Tlb::appendSinks(ift::SinkWriter &out) const
{
    if (sink_id_ == ift::kInvalidSinkId)
        sink_id_ = ift::internSink(name_, "entries");
    ift::SinkSnapshot &sink = out.next(sink_id_, true);
    sink.taint.resize(slots_.size());
    sink.live.resize(slots_.size());
    for (size_t i = 0; i < slots_.size(); ++i) {
        sink.taint[i] = slots_[i].vpn.t;
        sink.live[i] = slots_[i].valid ? 1 : 0;
    }
}

} // namespace dejavuzz::uarch
