#include "uarch/config.hh"

namespace dejavuzz::uarch {

CoreConfig
smallBoomConfig()
{
    CoreConfig cfg;
    cfg.name = "SmallBOOM";
    cfg.kind = CoreKind::Boom;
    cfg.isa = "RV64GC";

    cfg.rob_entries = 32;
    cfg.prf_entries = 96;
    cfg.lq_entries = 8;
    cfg.sq_entries = 8;
    cfg.bht_entries = 128;
    cfg.btb_entries = 16;
    cfg.faubtb_entries = 8;
    cfg.ras_entries = 8;
    cfg.loop_entries = 8;
    cfg.ind_entries = 8;
    cfg.icache_lines = 32;
    cfg.dcache_lines = 64;
    cfg.mshr_entries = 4;
    cfg.lfb_entries = 4;
    cfg.dtlb_entries = 8;
    cfg.l2tlb_entries = 16;

    // BOOM: speculative predictor updates, decode-stage illegal stall,
    // Meltdown-style forwarding, Phantom-RSB and Phantom-BTB bugs.
    cfg.meltdown_forwarding = true;
    cfg.illegal_stalls_decode = true;
    cfg.speculative_predictor_update = true;
    cfg.bug_b1_addr_truncation = false;
    cfg.bug_b2_ras_partial_restore = true;
    cfg.bug_b3_btb_race = true;
    cfg.bug_b4_fetch_refill_preempt = true;
    cfg.bug_b5_shared_load_wb = false;

    // Matches the manual-annotation effort reported in Table 2.
    cfg.annotation_loc = 212;
    return cfg;
}

CoreConfig
xiangshanMinimalConfig()
{
    CoreConfig cfg;
    cfg.name = "XiangShan-Minimal";
    cfg.kind = CoreKind::XiangShan;
    cfg.isa = "RV64GC";

    cfg.rob_entries = 48;
    cfg.prf_entries = 128;
    cfg.lq_entries = 12;
    cfg.sq_entries = 12;
    cfg.bht_entries = 256;
    cfg.btb_entries = 32;
    cfg.faubtb_entries = 0;   // no separate micro-BTB in this model
    cfg.ras_entries = 12;
    cfg.loop_entries = 0;     // no loop predictor
    cfg.ind_entries = 16;
    cfg.icache_lines = 64;
    cfg.dcache_lines = 128;
    cfg.mshr_entries = 6;
    cfg.lfb_entries = 6;
    cfg.dtlb_entries = 16;
    cfg.l2tlb_entries = 32;

    // XiangShan: commit-time predictor training (predictor state does
    // not leak), illegal instructions flow down the pipe (illegal
    // windows do trigger), B1 truncation and B5 port sharing present.
    cfg.meltdown_forwarding = true;
    cfg.illegal_stalls_decode = false;
    cfg.speculative_predictor_update = false;
    cfg.bug_b1_addr_truncation = true;
    cfg.bug_b2_ras_partial_restore = false;
    cfg.bug_b3_btb_race = false;
    cfg.bug_b4_fetch_refill_preempt = true;
    cfg.bug_b5_shared_load_wb = true;

    cfg.annotation_loc = 592;
    return cfg;
}

const char *
moduleName(ModuleId module_id)
{
    switch (module_id) {
      case kModFrontend: return "frontend";
      case kModICache:   return "icache";
      case kModBht:      return "bht";
      case kModBtb:      return "btb";
      case kModFauBtb:   return "faubtb";
      case kModRas:      return "ras";
      case kModLoopPred: return "loop";
      case kModIndPred:  return "indpred";
      case kModRename:   return "rename";
      case kModPrf:      return "prf";
      case kModRob:      return "rob";
      case kModLsu:      return "lsu";
      case kModLq:       return "lq";
      case kModSq:       return "sq";
      case kModDCache:   return "dcache";
      case kModMshr:     return "mshr";
      case kModLfb:      return "lfb";
      case kModDtlb:     return "dtlb";
      case kModL2Tlb:    return "l2tlb";
      case kModExec:     return "exec";
      case kModCsr:      return "csr";
      case kModCount:    break;
    }
    return "?";
}

const std::vector<CoreConfig> &
registeredCoreConfigs()
{
    // Built once; the order is part of the portability-matrix and
    // triage-output determinism contract (docs/triage.md).
    static const std::vector<CoreConfig> configs = {
        smallBoomConfig(),
        xiangshanMinimalConfig(),
    };
    return configs;
}

bool
coreConfigByName(const std::string &name, CoreConfig &out)
{
    for (const CoreConfig &config : registeredCoreConfigs()) {
        if (config.name == name) {
            out = config;
            return true;
        }
    }
    return false;
}

} // namespace dejavuzz::uarch
