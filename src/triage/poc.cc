#include "triage/poc.hh"

#include <cctype>
#include <istream>
#include <ostream>
#include <sstream>

#include "campaign/io_util.hh"
#include "isa/instr.hh"

namespace dejavuzz::triage {

namespace {

namespace bio = campaign::bio;

constexpr char kMagic[] = "DVZPOC 1";

/** One-line register/immediate rendering, uniform across formats. */
std::string
disasmLine(const isa::Instr &instr)
{
    std::ostringstream os;
    os << isa::mnemonic(instr.op);
    if (isa::fpRd(instr.op))
        os << " " << isa::fregName(instr.rd);
    else
        os << " " << isa::regName(instr.rd);
    if (isa::fpRs1(instr.op))
        os << ", " << isa::fregName(instr.rs1);
    else
        os << ", " << isa::regName(instr.rs1);
    if (isa::fpRs2(instr.op))
        os << ", " << isa::fregName(instr.rs2);
    else
        os << ", " << isa::regName(instr.rs2);
    os << ", " << instr.imm;
    return os.str();
}

bool
hexNibble(char c, uint8_t &out)
{
    if (c >= '0' && c <= '9') {
        out = static_cast<uint8_t>(c - '0');
        return true;
    }
    if (c >= 'a' && c <= 'f') {
        out = static_cast<uint8_t>(c - 'a' + 10);
        return true;
    }
    return false;
}

bool
setError(std::string *error, const std::string &what)
{
    if (error)
        *error = what;
    return false;
}

} // namespace

void
writePocFile(std::ostream &os, const PocArtifact &poc)
{
    os << kMagic << "\n";
    os << "cluster: " << poc.cluster << "\n";
    os << "key: " << poc.key << "\n";
    os << "config: " << poc.config << "\n";
    os << "variant: " << poc.variant << "\n";

    // Human-readable view; replay ignores every `#` line and trusts
    // only the binary blob below.
    os << "# trigger " << core::triggerKindName(poc.tc.seed.trigger)
       << ", " << poc.tc.schedule.packets.size() << " packet(s), "
       << poc.tc.schedule.effectiveTrainingOverhead()
       << " effective training instr(s)\n";
    for (size_t p = 0; p < poc.tc.schedule.packets.size(); ++p) {
        const swapmem::SwapPacket &packet =
            poc.tc.schedule.packets[p];
        os << "# packet " << p << " "
           << swapmem::packetKindName(packet.kind) << " \""
           << packet.label << "\"\n";
        for (size_t i = 0; i < packet.instrs.size(); ++i)
            os << "#   " << i << ": " << disasmLine(packet.instrs[i])
               << "\n";
    }

    std::ostringstream blob;
    bio::writeTestCase(blob, poc.tc);
    const std::string bytes = blob.str();
    static const char digits[] = "0123456789abcdef";
    std::string hex;
    hex.reserve(bytes.size() * 2);
    for (unsigned char byte : bytes) {
        hex.push_back(digits[byte >> 4]);
        hex.push_back(digits[byte & 0xf]);
    }
    os << "case: " << hex << "\n";
    os << "end\n";
}

bool
readPocFile(std::istream &is, PocArtifact &out, std::string *error)
{
    std::string line;
    if (!std::getline(is, line) || line != kMagic)
        return setError(error, "not a DVZPOC 1 file");

    PocArtifact poc;
    bool saw_case = false;
    bool saw_end = false;
    while (std::getline(is, line)) {
        if (line.empty() || line[0] == '#')
            continue;
        if (line == "end") {
            saw_end = true;
            break;
        }
        const size_t sep = line.find(": ");
        std::string field =
            sep == std::string::npos ? line : line.substr(0, sep);
        if (sep == std::string::npos)
            return setError(error,
                            "malformed PoC line \"" + line + "\"");
        std::string value = line.substr(sep + 2);
        if (field == "cluster") {
            poc.cluster = value;
        } else if (field == "key") {
            poc.key = value;
        } else if (field == "config") {
            poc.config = value;
        } else if (field == "variant") {
            poc.variant = value;
        } else if (field == "case") {
            if (value.size() % 2 != 0)
                return setError(error, "odd-length PoC case blob");
            std::string bytes;
            bytes.reserve(value.size() / 2);
            for (size_t i = 0; i < value.size(); i += 2) {
                uint8_t hi = 0, lo = 0;
                if (!hexNibble(value[i], hi) ||
                    !hexNibble(value[i + 1], lo)) {
                    return setError(error,
                                    "bad hex in PoC case blob");
                }
                bytes.push_back(
                    static_cast<char>((hi << 4) | lo));
            }
            std::istringstream blob(bytes);
            bio::Reader reader{blob, {}};
            if (!bio::readTestCase(reader, poc.tc))
                return setError(error, "corrupt PoC test case: " +
                                           reader.error);
            // The blob must end exactly where the test case does.
            if (blob.peek() != std::istream::traits_type::eof())
                return setError(error,
                                "trailing bytes after PoC test case");
            saw_case = true;
        } else {
            return setError(error,
                            "unknown PoC field \"" + field + "\"");
        }
    }
    if (!saw_end)
        return setError(error, "missing PoC \"end\" terminator");
    if (!saw_case)
        return setError(error, "PoC has no \"case\" field");
    if (poc.key.empty())
        return setError(error, "PoC has no \"key\" field");
    if (poc.config.empty())
        return setError(error, "PoC has no \"config\" field");
    if (poc.variant.empty())
        return setError(error, "PoC has no \"variant\" field");
    out = std::move(poc);
    return true;
}

std::string
pocFileName(const std::string &cluster_id)
{
    return cluster_id + ".dvzpoc";
}

} // namespace dejavuzz::triage
