#include "triage/cluster.hh"

#include <algorithm>
#include <cstdio>
#include <numeric>

namespace dejavuzz::triage {

namespace {

/** Plain union-find with path halving. */
struct UnionFind
{
    std::vector<size_t> parent;

    explicit UnionFind(size_t n) : parent(n)
    {
        std::iota(parent.begin(), parent.end(), size_t{0});
    }

    size_t
    find(size_t x)
    {
        while (parent[x] != x) {
            parent[x] = parent[parent[x]];
            x = parent[x];
        }
        return x;
    }

    void
    merge(size_t a, size_t b)
    {
        a = find(a);
        b = find(b);
        if (a != b)
            parent[std::max(a, b)] = std::min(a, b);
    }
};

} // namespace

std::vector<Cluster>
clusterLedger(const std::vector<campaign::BugRecord> &ledger,
              const ClusterOptions &options)
{
    const size_t n = ledger.size();
    std::vector<BugSignature> sigs;
    std::vector<std::string> keys;
    sigs.reserve(n);
    keys.reserve(n);
    for (const campaign::BugRecord &record : ledger) {
        sigs.push_back(signatureOf(record.report));
        keys.push_back(record.report.key());
    }

    // Transitive closure over every pair: membership depends only on
    // the entry *set*. O(n²) similarity calls — fine at ledger scale
    // (a signature compare is a merge walk over two short id arrays).
    UnionFind uf(n);
    for (size_t i = 0; i < n; ++i) {
        for (size_t j = i + 1; j < n; ++j) {
            if (keys[i] == keys[j] ||
                similarity(sigs[i], sigs[j]) >= options.threshold) {
                uf.merge(i, j);
            }
        }
    }

    // Group members per root, then canonicalize: members sorted by
    // key, clusters sorted by their smallest key, ids dense in that
    // order. None of this depends on input order or intern ids.
    std::vector<std::vector<size_t>> groups(n);
    for (size_t i = 0; i < n; ++i)
        groups[uf.find(i)].push_back(i);

    std::vector<Cluster> clusters;
    for (std::vector<size_t> &group : groups) {
        if (group.empty())
            continue;
        std::sort(group.begin(), group.end(),
                  [&](size_t a, size_t b) {
                      return keys[a] != keys[b] ? keys[a] < keys[b]
                                                : a < b;
                  });
        Cluster cluster;
        cluster.representative_index = group.front();
        cluster.representative = keys[group.front()];
        cluster.signature = sigs[group.front()];
        for (size_t member : group) {
            cluster.members.push_back(keys[member]);
            cluster.member_indices.push_back(member);
            // Union component set across the cluster.
            for (ift::SinkId id : sigs[member].sinks) {
                auto &sinks = cluster.signature.sinks;
                auto it = std::lower_bound(sinks.begin(), sinks.end(),
                                           id);
                if (it == sinks.end() || *it != id)
                    sinks.insert(it, id);
            }
        }
        clusters.push_back(std::move(cluster));
    }

    std::sort(clusters.begin(), clusters.end(),
              [](const Cluster &a, const Cluster &b) {
                  return a.representative < b.representative;
              });
    for (size_t i = 0; i < clusters.size(); ++i) {
        char id[24];
        std::snprintf(id, sizeof(id), "C%03zu", i);
        clusters[i].id = id;
    }
    return clusters;
}

std::string
clusterOf(const std::vector<Cluster> &clusters,
          const std::string &key)
{
    for (const Cluster &cluster : clusters) {
        if (std::binary_search(cluster.members.begin(),
                               cluster.members.end(), key)) {
            return cluster.id;
        }
    }
    return "";
}

} // namespace dejavuzz::triage
