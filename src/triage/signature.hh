/**
 * @file
 * Triage signatures: the clustering view of a ledger entry.
 *
 * The ledger dedups on the exact (attack, window, component-set) key,
 * which is the right grain for regression replay but too fine for
 * triage: one root cause (say, a leaky d-cache refill port) surfaces
 * under several window kinds and with small component-set variations,
 * and a fleet-scale campaign counts it dozens of times. A
 * BugSignature reduces each entry to the axes that indicate a shared
 * root cause — attack family, masked-address flag and the interned
 * taint-sink/timing component set (ift::SinkId, PR 5) — and
 * similarity() scores two signatures by component overlap so the
 * clusterer (cluster.hh) can collapse near-duplicates.
 */

#ifndef DEJAVUZZ_TRIAGE_SIGNATURE_HH
#define DEJAVUZZ_TRIAGE_SIGNATURE_HH

#include <string>
#include <vector>

#include "campaign/ledger.hh"
#include "core/report.hh"
#include "ift/sinkid.hh"

namespace dejavuzz::triage {

/** The clustering-relevant reduction of one bug report. */
struct BugSignature
{
    core::AttackType attack = core::AttackType::Spectre;
    bool masked_address = false;
    core::TriggerKind window = core::TriggerKind::BranchMispredict;
    /** Interned component ids, sorted ascending — integer set
     *  algebra on the comparison path, strings only on output. */
    std::vector<ift::SinkId> sinks;
};

/** Extract the signature of @p report. */
BugSignature signatureOf(const core::BugReport &report);

/**
 * Similarity in [0, 1]: Jaccard overlap of the component sets, gated
 * to 0 when the attack family or masked-address flag differ (a
 * Meltdown and a Spectre never share a root cause in the paper's
 * taxonomy). Two empty component sets of the same family count as
 * identical (1.0). The window kind deliberately does not gate: the
 * same root cause triggered through different transient windows is
 * exactly what triage should collapse. Symmetric.
 */
double similarity(const BugSignature &a, const BugSignature &b);

/** Component names of @p sig, sorted (resolved from the intern
 *  table; deterministic regardless of intern order). */
std::vector<std::string> componentNames(const BugSignature &sig);

} // namespace dejavuzz::triage

#endif // DEJAVUZZ_TRIAGE_SIGNATURE_HH
