#include "triage/signature.hh"

#include <algorithm>

namespace dejavuzz::triage {

BugSignature
signatureOf(const core::BugReport &report)
{
    BugSignature sig;
    sig.attack = report.attack;
    sig.masked_address = report.masked_address;
    sig.window = report.window;
    sig.sinks.reserve(report.components.size());
    for (const std::string &component : report.components)
        sig.sinks.push_back(ift::internSink(component, "component"));
    std::sort(sig.sinks.begin(), sig.sinks.end());
    sig.sinks.erase(std::unique(sig.sinks.begin(), sig.sinks.end()),
                    sig.sinks.end());
    return sig;
}

double
similarity(const BugSignature &a, const BugSignature &b)
{
    if (a.attack != b.attack || a.masked_address != b.masked_address)
        return 0.0;
    if (a.sinks.empty() && b.sinks.empty())
        return 1.0;
    // |A ∩ B| over two sorted id vectors.
    size_t both = 0;
    size_t i = 0, j = 0;
    while (i < a.sinks.size() && j < b.sinks.size()) {
        if (a.sinks[i] == b.sinks[j]) {
            ++both;
            ++i;
            ++j;
        } else if (a.sinks[i] < b.sinks[j]) {
            ++i;
        } else {
            ++j;
        }
    }
    const size_t either = a.sinks.size() + b.sinks.size() - both;
    return static_cast<double>(both) / static_cast<double>(either);
}

std::vector<std::string>
componentNames(const BugSignature &sig)
{
    std::vector<std::string> names;
    names.reserve(sig.sinks.size());
    for (ift::SinkId id : sig.sinks)
        names.push_back(ift::sinkModule(id));
    std::sort(names.begin(), names.end());
    return names;
}

} // namespace dejavuzz::triage
