#include "triage/triage.hh"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <ostream>
#include <sstream>

#include "campaign/io_util.hh"
#include "campaign/stats.hh"

namespace dejavuzz::triage {

namespace {

namespace fs = std::filesystem;
using campaign::jsonEscape;

std::string
joined(const std::vector<std::string> &items)
{
    std::string out;
    for (size_t i = 0; i < items.size(); ++i) {
        if (i)
            out += ";";
        out += items[i];
    }
    return out;
}

} // namespace

TriageResult
triageLedger(const std::vector<campaign::BugRecord> &ledger,
             const TriageOptions &options, FuzzerCache &fuzzers)
{
    TriageResult result;
    result.ledger = ledger;
    // BugLedger::entries() is already key-sorted; canonicalize anyway
    // so triage of a hand-assembled vector (tests, merged ledgers)
    // derives the same artifacts as the real thing.
    std::sort(result.ledger.begin(), result.ledger.end(),
              [](const campaign::BugRecord &a,
                 const campaign::BugRecord &b) {
                  return a.report.key() < b.report.key();
              });

    result.clusters = clusterLedger(result.ledger, options.cluster);
    if (options.matrix)
        result.matrix = portabilityMatrix(result.ledger, fuzzers);

    for (size_t i = 0; i < result.ledger.size(); ++i) {
        campaign::BugRecord &record = result.ledger[i];
        record.cluster =
            clusterOf(result.clusters, record.report.key());
        record.reproduces_on = options.matrix
                                   ? result.matrix[i].reproducesOn()
                                   : std::vector<std::string>{};
    }

    if (options.emit_pocs) {
        for (const Cluster &cluster : result.clusters) {
            const campaign::BugRecord &rep =
                result.ledger[cluster.representative_index];
            core::Fuzzer *fuzzer =
                fuzzers.get(rep.config, rep.variant);
            if (!fuzzer)
                continue;
            PocEntry entry;
            entry.artifact.tc =
                shrinkCase(*fuzzer, rep.repro, rep.report.key(),
                           &entry.stats);
            if (!entry.stats.reproduced_initially)
                continue;
            entry.artifact.cluster = cluster.id;
            entry.artifact.key = rep.report.key();
            entry.artifact.config = rep.config;
            entry.artifact.variant = rep.variant;
            result.pocs.push_back(std::move(entry));
        }
    }
    return result;
}

void
writeTriageJsonl(std::ostream &os, const TriageResult &result)
{
    // Flat objects only — the dejavuzz-report JSON dialect has no
    // arrays or nesting, so list-valued fields join on ";" and the
    // matrix flattens to one record per (bug, config) cell.
    for (const Cluster &cluster : result.clusters) {
        os << "{\"record\":\"cluster\",\"id\":\"" << cluster.id
           << "\",\"representative\":\""
           << jsonEscape(cluster.representative) << "\",\"size\":"
           << cluster.members.size() << ",\"members\":\""
           << jsonEscape(joined(cluster.members))
           << "\",\"components\":\""
           << jsonEscape(joined(componentNames(cluster.signature)))
           << "\"}\n";
    }
    for (const BugPortability &row : result.matrix) {
        for (const PortabilityCell &cell : row.cells) {
            os << "{\"record\":\"portability\",\"key\":\""
               << jsonEscape(row.key) << "\",\"origin\":\""
               << jsonEscape(row.origin_config)
               << "\",\"variant\":\"" << jsonEscape(row.variant)
               << "\",\"config\":\"" << jsonEscape(cell.config)
               << "\",\"reproduced\":"
               << (cell.reproduced ? "true" : "false")
               << ",\"observed\":\"" << jsonEscape(cell.observed)
               << "\"}\n";
        }
    }
    for (const PocEntry &poc : result.pocs) {
        os << "{\"record\":\"poc\",\"cluster\":\""
           << poc.artifact.cluster << "\",\"key\":\""
           << jsonEscape(poc.artifact.key) << "\",\"config\":\""
           << jsonEscape(poc.artifact.config) << "\",\"variant\":\""
           << jsonEscape(poc.artifact.variant) << "\",\"file\":\""
           << jsonEscape("pocs/" + pocFileName(poc.artifact.cluster))
           << "\",\"packets_before\":" << poc.stats.packets_before
           << ",\"packets_after\":" << poc.stats.packets_after
           << ",\"instrs_before\":" << poc.stats.instrs_before
           << ",\"instrs_after\":" << poc.stats.instrs_after
           << ",\"effective_before\":" << poc.stats.effective_before
           << ",\"effective_after\":" << poc.stats.effective_after
           << ",\"oracle_calls\":" << poc.stats.oracle_calls
           << "}\n";
    }
}

bool
writePocs(const std::string &dir, const TriageResult &result,
          std::string *error)
{
    const fs::path poc_dir = fs::path(dir) / "pocs";
    std::error_code ec;
    fs::create_directories(poc_dir, ec);
    if (ec) {
        if (error)
            *error = "cannot create " + poc_dir.string() + ": " +
                     ec.message();
        return false;
    }
    for (const PocEntry &poc : result.pocs) {
        const fs::path path =
            poc_dir / pocFileName(poc.artifact.cluster);
        {
            std::ofstream os(path, std::ios::binary);
            if (!os) {
                if (error)
                    *error = "cannot open " + path.string();
                return false;
            }
            writePocFile(os, poc.artifact);
            if (!os) {
                if (error)
                    *error = "write failed for " + path.string();
                return false;
            }
        }
        // Read-back verification: the file on disk must parse and
        // carry the exact same test case we minimized.
        std::ifstream is(path, std::ios::binary);
        PocArtifact loaded;
        std::string parse_error;
        if (!readPocFile(is, loaded, &parse_error)) {
            if (error)
                *error = path.string() +
                         " failed read-back: " + parse_error;
            return false;
        }
        if (loaded.key != poc.artifact.key ||
            campaign::hashTestCase(loaded.tc) !=
                campaign::hashTestCase(poc.artifact.tc)) {
            if (error)
                *error = path.string() +
                         " round-trip mismatch against the "
                         "minimized case";
            return false;
        }
    }
    return true;
}

void
annotateLedger(campaign::BugLedger &ledger,
               const TriageResult &result)
{
    for (const campaign::BugRecord &record : result.ledger) {
        ledger.annotate(record.report.key(), record.cluster,
                        record.reproduces_on);
    }
}

} // namespace dejavuzz::triage
