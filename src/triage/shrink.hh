/**
 * @file
 * Delta-debugging shrinker for bug reproducers.
 *
 * Given a test case and the bug signature it reproduces, shrinkCase()
 * searches for a smaller case that still reproduces the *exact same*
 * signature, using core::Fuzzer::replayCase as the oracle. Fuzzer
 * campaigns produce reproducers padded with training noise and
 * irrelevant window instructions; a minimized PoC makes the root
 * cause legible and replays faster in regression CI.
 *
 * The reduction is structure-preserving: instructions are replaced
 * with canonical NOPs rather than removed, because the swap runtime
 * re-encodes packets at kSwapBase and branch targets, padTo layouts
 * and the window/encode index metadata all use absolute addresses or
 * indices — removal would silently retarget every later instruction.
 * Whole training packets *are* dropped (SwapSchedule::without keeps
 * the remaining layout intact). Additional passes zero operand slots
 * and secret bytes that the leak does not depend on.
 *
 * All passes run under an outer fixpoint loop until a full round
 * changes nothing, which makes the shrinker idempotent by
 * construction: re-shrinking a minimized case replays exactly that
 * final no-change round. Everything is deterministic — candidate
 * order is structural, the oracle is pure — so the same input always
 * minimizes to the byte-identical output.
 */

#ifndef DEJAVUZZ_TRIAGE_SHRINK_HH
#define DEJAVUZZ_TRIAGE_SHRINK_HH

#include <cstddef>
#include <string>

#include "core/fuzzer.hh"
#include "core/seed.hh"

namespace dejavuzz::triage {

/** Before/after accounting for one shrink run. */
struct ShrinkStats
{
    size_t packets_before = 0;
    size_t packets_after = 0;
    size_t instrs_before = 0;  ///< total schedule instruction count
    size_t instrs_after = 0;
    size_t effective_before = 0; ///< non-nop instructions
    size_t effective_after = 0;
    size_t oracle_calls = 0;     ///< replayCase invocations
    /** False when the input did not reproduce @p expected_key on the
     *  given fuzzer to begin with (the input is returned unchanged). */
    bool reproduced_initially = false;
};

/**
 * Minimize @p tc while preserving reproduction of @p expected_key
 * (the BugReport dedup key) on @p fuzzer. Returns the minimized case;
 * when the input does not reproduce at all, returns it unchanged with
 * stats.reproduced_initially == false. Never increases the
 * instruction count of any surviving packet.
 */
core::TestCase shrinkCase(core::Fuzzer &fuzzer,
                          const core::TestCase &tc,
                          const std::string &expected_key,
                          ShrinkStats *stats = nullptr);

} // namespace dejavuzz::triage

#endif // DEJAVUZZ_TRIAGE_SHRINK_HH
