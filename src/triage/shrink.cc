#include "triage/shrink.hh"

#include <algorithm>
#include <functional>
#include <utility>
#include <vector>

#include "isa/encoding.hh"

namespace dejavuzz::triage {

namespace {

bool
isNop(const isa::Instr &instr)
{
    return instr.op == isa::Op::ADDI && instr.rd == 0 &&
           instr.rs1 == 0 && instr.imm == 0;
}

isa::Instr
canonicalNop()
{
    isa::Instr nop;
    nop.op = isa::Op::ADDI;
    nop.rd = 0;
    nop.rs1 = 0;
    nop.rs2 = 0;
    nop.imm = 0;
    nop.raw = isa::encode(nop);
    return nop;
}

size_t
totalInstrs(const swapmem::SwapSchedule &schedule)
{
    size_t n = 0;
    for (const swapmem::SwapPacket &packet : schedule.packets)
        n += packet.size();
    return n;
}

size_t
totalEffective(const swapmem::SwapSchedule &schedule)
{
    size_t n = 0;
    for (const swapmem::SwapPacket &packet : schedule.packets)
        n += packet.effectiveSize();
    return n;
}

/**
 * ddmin-style chunk neutralization: walk chunk sizes from half the
 * candidate count down to 1 and greedily keep every chunk whose
 * neutralization the oracle accepts. `neutralize(base, begin, end)`
 * returns `base` with candidates [begin, end) neutralized; accepted
 * chunks fold into the running base so later trials compound.
 * `neutral(base, k)` reports a candidate that is already in its
 * neutral form — all-neutral chunks are skipped, which both saves
 * oracle calls and guarantees the caller's fixpoint loop terminates
 * (a no-op trial never counts as a change).
 */
template <typename State, typename Neutral, typename Neutralize,
          typename Oracle>
bool
chunkReduce(State &base, size_t candidates, Neutral neutral,
            Neutralize neutralize, Oracle oracle)
{
    bool changed = false;
    for (size_t chunk = std::max<size_t>(candidates / 2, 1);;
         chunk /= 2) {
        for (size_t begin = 0; begin < candidates; begin += chunk) {
            const size_t end = std::min(begin + chunk, candidates);
            bool all_neutral = true;
            for (size_t k = begin; k < end && all_neutral; ++k)
                all_neutral = neutral(base, k);
            if (all_neutral)
                continue;
            State trial = neutralize(base, begin, end);
            if (oracle(trial)) {
                base = std::move(trial);
                changed = true;
            }
        }
        if (chunk == 1)
            break;
    }
    return changed;
}

} // namespace

core::TestCase
shrinkCase(core::Fuzzer &fuzzer, const core::TestCase &tc,
           const std::string &expected_key, ShrinkStats *stats)
{
    ShrinkStats local;
    ShrinkStats &st = stats ? *stats : local;
    st = ShrinkStats{};
    st.packets_before = tc.schedule.packets.size();
    st.instrs_before = totalInstrs(tc.schedule);
    st.effective_before = totalEffective(tc.schedule);

    auto reproduces = [&](const core::TestCase &trial) {
        ++st.oracle_calls;
        core::Fuzzer::ReplayOutcome outcome = fuzzer.replayCase(trial);
        return outcome.report.has_value() &&
               outcome.report->key() == expected_key;
    };

    auto finish = [&](const core::TestCase &result) {
        st.packets_after = result.schedule.packets.size();
        st.instrs_after = totalInstrs(result.schedule);
        st.effective_after = totalEffective(result.schedule);
        return result;
    };

    if (!reproduces(tc))
        return finish(tc);
    st.reproduced_initially = true;

    const isa::Instr nop = canonicalNop();
    core::TestCase best = tc;

    // Fixpoint: repeat the pass stack until a whole round leaves the
    // case untouched. Each pass is deterministic, so a re-shrink of
    // the result is exactly that final no-change round — idempotence
    // without any extra bookkeeping.
    bool changed = true;
    while (changed) {
        changed = false;

        // Pass 1: drop whole training packets, last first (later
        // training usually refines earlier training, so it is the
        // most likely to be redundant). The transient packet is
        // structurally required and never a candidate.
        for (size_t i = best.schedule.packets.size(); i-- > 0;) {
            if (best.schedule.packets[i].kind ==
                swapmem::PacketKind::Transient) {
                continue;
            }
            core::TestCase trial = best;
            trial.schedule = best.schedule.without(i);
            if (reproduces(trial)) {
                best = std::move(trial);
                changed = true;
            }
        }

        // Pass 2: NOP-replace instructions. Candidates are every
        // non-nop, non-SWAPNEXT instruction across the surviving
        // packets (SWAPNEXT is the swap runtime's sequence hook;
        // NOPping it would wedge the schedule, never reproduce, and
        // waste an oracle call per round).
        std::vector<std::pair<size_t, size_t>> sites;
        for (size_t p = 0; p < best.schedule.packets.size(); ++p) {
            const auto &instrs = best.schedule.packets[p].instrs;
            for (size_t i = 0; i < instrs.size(); ++i) {
                if (instrs[i].op != isa::Op::SWAPNEXT &&
                    !isNop(instrs[i])) {
                    sites.emplace_back(p, i);
                }
            }
        }
        if (!sites.empty()) {
            changed |= chunkReduce(
                best, sites.size(),
                [&](const core::TestCase &base, size_t k) {
                    auto [p, i] = sites[k];
                    return isNop(base.schedule.packets[p].instrs[i]);
                },
                [&](const core::TestCase &base, size_t begin,
                    size_t end) {
                    core::TestCase trial = base;
                    for (size_t k = begin; k < end; ++k) {
                        auto [p, i] = sites[k];
                        trial.schedule.packets[p].instrs[i] = nop;
                    }
                    return trial;
                },
                reproduces);
        }

        // Pass 3: zero operand slots the leak does not read.
        if (!best.data.operands.empty()) {
            changed |= chunkReduce(
                best, best.data.operands.size(),
                [&](const core::TestCase &base, size_t k) {
                    return base.data.operands[k] == 0;
                },
                [&](const core::TestCase &base, size_t begin,
                    size_t end) {
                    core::TestCase trial = base;
                    for (size_t k = begin; k < end; ++k)
                        trial.data.operands[k] = 0;
                    return trial;
                },
                reproduces);
        }

        // Pass 4: zero secret bytes. The differential oracle compares
        // DUTs on secret vs bit-flipped secret, so bytes the encode
        // block never touches can go to zero without changing the
        // observed signature — the survivors point at the leaked
        // range.
        changed |= chunkReduce(
            best, best.data.secret.size(),
            [&](const core::TestCase &base, size_t k) {
                return base.data.secret[k] == 0;
            },
            [&](const core::TestCase &base, size_t begin, size_t end) {
                core::TestCase trial = base;
                for (size_t k = begin; k < end; ++k)
                    trial.data.secret[k] = 0;
                return trial;
            },
            reproduces);
    }

    return finish(best);
}

} // namespace dejavuzz::triage
