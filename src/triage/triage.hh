/**
 * @file
 * The triage pipeline: cluster → portability matrix → shrink → PoC.
 *
 * triageLedger() turns a raw campaign ledger into an actionable bug
 * report set: entries are clustered by signature similarity
 * (cluster.hh), every entry is replayed across all registered core
 * configs (portability.hh), and each cluster's representative
 * reproducer is delta-debugged down to a minimal standalone PoC
 * (shrink.hh, poc.hh). The result serializes to
 * `<campaign-dir>/triage.jsonl` (flat JSON records, one per line —
 * the dejavuzz-report parser's dialect) and `<campaign-dir>/pocs/`.
 *
 * Determinism contract: the pipeline is a pure function of the
 * ledger contents and options. Entries are canonicalized by dedup
 * key up front, no wall-clock or host state enters any artifact, and
 * every stage iterates in a canonical order — running `--triage`
 * twice over the same campaign directory produces byte-identical
 * triage.jsonl and PoC files (asserted in tests and CI).
 */

#ifndef DEJAVUZZ_TRIAGE_TRIAGE_HH
#define DEJAVUZZ_TRIAGE_TRIAGE_HH

#include <iosfwd>
#include <string>
#include <vector>

#include "campaign/ledger.hh"
#include "triage/cluster.hh"
#include "triage/poc.hh"
#include "triage/portability.hh"
#include "triage/shrink.hh"

namespace dejavuzz::triage {

struct TriageOptions
{
    ClusterOptions cluster;
    bool matrix = true;    ///< build the cross-config matrix
    bool emit_pocs = true; ///< shrink representatives into PoCs
};

/** One emitted PoC plus its shrink accounting. */
struct PocEntry
{
    PocArtifact artifact;
    ShrinkStats stats;
};

/** Everything one triage pass derives from a ledger. */
struct TriageResult
{
    /** The triaged entries, sorted by dedup key, with the cluster /
     *  reproduces_on annotations filled in. */
    std::vector<campaign::BugRecord> ledger;
    std::vector<Cluster> clusters;
    /** Rows aligned index-wise with `ledger`; empty when
     *  options.matrix was off. */
    std::vector<BugPortability> matrix;
    /** One per cluster, cluster order; empty when options.emit_pocs
     *  was off. A cluster whose representative fails to reproduce on
     *  its origin config emits no PoC (its minimization would have
     *  no oracle). */
    std::vector<PocEntry> pocs;
};

/**
 * Run the pipeline over @p ledger. @p fuzzers is shared so the
 * matrix, the shrinker and later PoC verification reuse simulators.
 */
TriageResult triageLedger(
    const std::vector<campaign::BugRecord> &ledger,
    const TriageOptions &options, FuzzerCache &fuzzers);

/**
 * Write one flat-JSON record per line for every cluster, matrix cell
 * and PoC in @p result — the `triage.jsonl` artifact
 * (docs/campaign-format.md). Deterministic: no timestamps, canonical
 * record order.
 */
void writeTriageJsonl(std::ostream &os, const TriageResult &result);

/**
 * Write every PoC of @p result into `<dir>/pocs/` and verify each by
 * reading it back. Returns false on the first IO or round-trip
 * failure (diagnostic in @p error when non-null).
 */
bool writePocs(const std::string &dir, const TriageResult &result,
               std::string *error = nullptr);

/** Copy @p result's annotations back onto a live ledger. */
void annotateLedger(campaign::BugLedger &ledger,
                    const TriageResult &result);

} // namespace dejavuzz::triage

#endif // DEJAVUZZ_TRIAGE_TRIAGE_HH
