/**
 * @file
 * Standalone proof-of-concept artifacts (`DVZPOC 1`).
 *
 * A PoC file packages one minimized reproducer together with the
 * bug signature it reproduces and the config/variant it reproduces
 * on — everything `dejavuzz-replay --poc FILE` needs to re-confirm
 * the bug with no campaign directory at hand. The format is a small
 * text envelope (versioned header, `field: value` lines, `#` comment
 * lines carrying a human-readable disassembly, a hex-encoded
 * bio::writeTestCase blob, `end` terminator) so PoCs diff cleanly,
 * attach to bug reports and survive copy-paste; the layout is
 * specified in docs/campaign-format.md. Writing is deterministic:
 * the same artifact always serializes byte-identically.
 */

#ifndef DEJAVUZZ_TRIAGE_POC_HH
#define DEJAVUZZ_TRIAGE_POC_HH

#include <iosfwd>
#include <string>

#include "core/seed.hh"

namespace dejavuzz::triage {

/** One standalone PoC: a minimized reproducer plus its claim. */
struct PocArtifact
{
    std::string cluster;  ///< cluster id ("C000"); "" outside triage
    std::string key;      ///< bug signature the case must reproduce
    std::string config;   ///< core config that reproduces it
    std::string variant;  ///< ablation variant to replay under
    core::TestCase tc;    ///< the minimized test case
};

/** Serialize @p poc (with disassembly comments) to @p os. */
void writePocFile(std::ostream &os, const PocArtifact &poc);

/**
 * Strictly parse a `DVZPOC 1` stream: bad magic, an unknown field, a
 * malformed hex blob or a missing terminator all fail with a
 * diagnostic in @p error (when non-null). Comment lines are skipped.
 */
bool readPocFile(std::istream &is, PocArtifact &out,
                 std::string *error = nullptr);

/** Canonical file name for a cluster's PoC ("C000.dvzpoc"). */
std::string pocFileName(const std::string &cluster_id);

} // namespace dejavuzz::triage

#endif // DEJAVUZZ_TRIAGE_POC_HH
