/**
 * @file
 * Cross-config portability replay.
 *
 * A ledger records each bug on the config that found it; the
 * portability matrix answers the question the paper's Table 5 poses —
 * *which cores does this bug affect?* — by replaying every
 * reproducer through core::Fuzzer::replayCase on **every** registered
 * core config (uarch::registeredCoreConfigs), not just its origin.
 * Each (bug, config) cell records reproduce/no-reproduce plus the
 * observed sink-diff signature as provenance: a bug that *does*
 * replay elsewhere but with a different component set shows up as
 * no-reproduce with the foreign signature in `observed`, which is
 * exactly the information a triager needs.
 *
 * Deterministic: replayCase outcomes are pure functions of
 * (config, variant, test case), and rows/cells follow ledger order ×
 * config registry order — two runs from the same ledger are
 * byte-identical (asserted in tests/test_replay.cc).
 */

#ifndef DEJAVUZZ_TRIAGE_PORTABILITY_HH
#define DEJAVUZZ_TRIAGE_PORTABILITY_HH

#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "campaign/ledger.hh"
#include "core/fuzzer.hh"

namespace dejavuzz::triage {

/**
 * Replay simulators, one per (config, variant), built lazily and
 * reused across every bug and every pipeline stage (matrix, shrink,
 * PoC verification) — replaying a full campaign builds at most
 * |configs| × |variants| fuzzers.
 */
class FuzzerCache
{
  public:
    /**
     * The cached fuzzer for (@p config_name, @p variant), built on
     * first use. Returns nullptr — with a diagnostic in @p error when
     * non-null — for a config name or variant this build does not
     * know.
     */
    core::Fuzzer *get(const std::string &config_name,
                      const std::string &variant,
                      std::string *error = nullptr);

  private:
    std::map<std::pair<std::string, std::string>,
             std::unique_ptr<core::Fuzzer>>
        cache_;
};

/** One (bug, config) cell. */
struct PortabilityCell
{
    std::string config; ///< target core config name
    bool reproduced = false;
    /** Sink-diff provenance: the observed signature key, "no-leak",
     *  "window-not-triggered", or a diagnostic. */
    std::string observed;
};

/** One bug's row: a cell per registered config, registry order. */
struct BugPortability
{
    std::string key;           ///< the ledger signature replayed
    std::string origin_config; ///< config the bug was found on
    std::string variant;       ///< ablation variant it was found under
    std::vector<PortabilityCell> cells;

    /** Config names whose cell reproduced, registry order. */
    std::vector<std::string> reproducesOn() const;
};

/**
 * Build the full matrix for @p ledger (rows in ledger order). Never
 * fails: un-replayable records yield diagnostic cells.
 */
std::vector<BugPortability> portabilityMatrix(
    const std::vector<campaign::BugRecord> &ledger,
    FuzzerCache &fuzzers);

} // namespace dejavuzz::triage

#endif // DEJAVUZZ_TRIAGE_PORTABILITY_HH
