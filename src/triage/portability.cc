#include "triage/portability.hh"

#include "campaign/orchestrator.hh"
#include "uarch/config.hh"

namespace dejavuzz::triage {

core::Fuzzer *
FuzzerCache::get(const std::string &config_name,
                 const std::string &variant, std::string *error)
{
    auto key = std::make_pair(config_name, variant);
    auto it = cache_.find(key);
    if (it != cache_.end())
        return it->second.get();

    uarch::CoreConfig config;
    if (!uarch::coreConfigByName(config_name, config)) {
        if (error)
            *error = "unknown core config \"" + config_name + "\"";
        return nullptr;
    }
    core::FuzzerOptions fopts;
    if (!campaign::applyAblationVariant(variant, fopts)) {
        if (error)
            *error = "unknown ablation variant \"" + variant + "\"";
        return nullptr;
    }
    // Replay is a verdict oracle; the coverage curve is campaign-only
    // state and recording it would make triage output depend on call
    // history.
    fopts.record_coverage_curve = false;

    it = cache_
             .emplace(std::move(key),
                      std::make_unique<core::Fuzzer>(config, fopts))
             .first;
    return it->second.get();
}

std::vector<std::string>
BugPortability::reproducesOn() const
{
    std::vector<std::string> names;
    for (const PortabilityCell &cell : cells) {
        if (cell.reproduced)
            names.push_back(cell.config);
    }
    return names;
}

std::vector<BugPortability>
portabilityMatrix(const std::vector<campaign::BugRecord> &ledger,
                  FuzzerCache &fuzzers)
{
    std::vector<BugPortability> matrix;
    matrix.reserve(ledger.size());
    for (const campaign::BugRecord &record : ledger) {
        BugPortability row;
        row.key = record.report.key();
        row.origin_config = record.config;
        row.variant = record.variant;

        for (const uarch::CoreConfig &config :
             uarch::registeredCoreConfigs()) {
            PortabilityCell cell;
            cell.config = config.name;

            std::string error;
            core::Fuzzer *fuzzer =
                fuzzers.get(config.name, record.variant, &error);
            if (!fuzzer) {
                cell.observed = error;
                row.cells.push_back(std::move(cell));
                continue;
            }
            core::Fuzzer::ReplayOutcome outcome =
                fuzzer->replayCase(record.repro);
            if (outcome.timed_out) {
                // A foreign core can legitimately run a reproducer
                // into pathological territory; the guard turns that
                // into a diagnostic cell, not a stuck matrix.
                cell.observed = "replay-timeout";
            } else if (!outcome.report.has_value()) {
                cell.observed = outcome.window_ok
                                    ? "no-leak"
                                    : "window-not-triggered";
            } else {
                cell.observed = outcome.report->key();
                cell.reproduced = cell.observed == row.key;
            }
            row.cells.push_back(std::move(cell));
        }
        matrix.push_back(std::move(row));
    }
    return matrix;
}

} // namespace dejavuzz::triage
