/**
 * @file
 * Deterministic signature clustering over a bug ledger.
 *
 * Ledger entries whose signatures (signature.hh) overlap at or above
 * a similarity threshold are merged into one cluster via the
 * transitive closure over *all* entry pairs — so the result depends
 * only on the set of entries, never on their order (permutation
 * invariance is asserted in tests/test_triage.cc). Each cluster is
 * named after its representative — the member with the
 * lexicographically smallest dedup key — and clusters are emitted
 * sorted by representative key with dense zero-padded ids (C000,
 * C001, ...), making every downstream artifact (triage.jsonl, PoC
 * files, report tables) byte-reproducible.
 */

#ifndef DEJAVUZZ_TRIAGE_CLUSTER_HH
#define DEJAVUZZ_TRIAGE_CLUSTER_HH

#include <cstddef>
#include <string>
#include <vector>

#include "campaign/ledger.hh"
#include "triage/signature.hh"

namespace dejavuzz::triage {

struct ClusterOptions
{
    /** Minimum pairwise similarity() that merges two entries. The
     *  default collapses component sets sharing a strict majority
     *  while keeping disjoint ones apart. */
    double threshold = 0.5;
};

/** One root-cause cluster. */
struct Cluster
{
    std::string id;             ///< "C000", dense in emission order
    std::string representative; ///< smallest member dedup key
    /** Index of the representative entry in the input vector (its
     *  record carries the reproducer the PoC pipeline shrinks). */
    size_t representative_index = 0;
    /** Member dedup keys, sorted ascending. */
    std::vector<std::string> members;
    /** Input indices of the members, in `members` order. */
    std::vector<size_t> member_indices;
    /** Union signature: representative attack/window, merged
     *  component set across all members. */
    BugSignature signature;
};

/**
 * Cluster @p ledger entries (order-independent; see file comment).
 * Entries with duplicate dedup keys — impossible in a real ledger —
 * are treated as near-identical and always merge.
 */
std::vector<Cluster> clusterLedger(
    const std::vector<campaign::BugRecord> &ledger,
    const ClusterOptions &options = {});

/** The cluster id assigned to @p key, or "" when unclustered. */
std::string clusterOf(const std::vector<Cluster> &clusters,
                      const std::string &key);

} // namespace dejavuzz::triage

#endif // DEJAVUZZ_TRIAGE_CLUSTER_HH
