#include "report/triage_log.hh"

#include <algorithm>
#include <cerrno>
#include <cstdlib>
#include <istream>

#include "report/json.hh"

namespace dejavuzz::report {

namespace {

/** Field extraction over one parsed line; collects the first error.
 *  Mirrors the campaign-log parser's helper, plus booleans (the
 *  portability record is the only boolean-carrying schema). */
class Fields
{
  public:
    Fields(const JsonObject &obj, std::string &error)
        : obj_(obj), error_(error)
    {}

    bool
    ok() const
    {
        return error_.empty();
    }

    void
    u64(const char *key, uint64_t &out)
    {
        const JsonValue *value = find(key);
        if (!value)
            return;
        bool integral = value->isNumber() && !value->raw.empty();
        for (char c : value->raw) {
            if (c < '0' || c > '9')
                integral = false;
        }
        if (!integral) {
            set(std::string("field \"") + key +
                "\" must be a non-negative integer");
            return;
        }
        errno = 0;
        out = std::strtoull(value->raw.c_str(), nullptr, 10);
        if (errno == ERANGE)
            set(std::string("field \"") + key +
                "\" exceeds the 64-bit range");
    }

    void
    str(const char *key, std::string &out)
    {
        const JsonValue *value = find(key);
        if (!value)
            return;
        if (!value->isString()) {
            set(std::string("field \"") + key +
                "\" must be a string");
            return;
        }
        out = value->text;
    }

    void
    boolean(const char *key, bool &out)
    {
        const JsonValue *value = find(key);
        if (!value)
            return;
        if (value->kind != JsonValue::Kind::Bool) {
            set(std::string("field \"") + key +
                "\" must be a boolean");
            return;
        }
        out = value->boolean;
    }

  private:
    const JsonValue *
    find(const char *key)
    {
        if (!ok())
            return nullptr;
        auto it = obj_.find(key);
        if (it == obj_.end()) {
            set(std::string("missing field \"") + key + "\"");
            return nullptr;
        }
        return &it->second;
    }

    void
    set(const std::string &what)
    {
        if (error_.empty())
            error_ = what;
    }

    const JsonObject &obj_;
    std::string &error_;
};

bool
fail(std::string *error, size_t lineno, const std::string &what)
{
    if (error)
        *error = "triage.jsonl line " + std::to_string(lineno) +
                 ": " + what;
    return false;
}

} // namespace

bool
parseTriageLog(std::istream &is, TriageLog &out, std::string *error)
{
    TriageLog log;
    std::string line;
    size_t lineno = 0;
    while (std::getline(is, line)) {
        ++lineno;
        if (line.empty())
            continue;
        JsonObject obj;
        std::string what;
        if (!parseFlatJsonObject(line, obj, &what))
            return fail(error, lineno, what);

        Fields fields(obj, what);
        std::string record;
        fields.str("record", record);
        if (record == "cluster") {
            ClusterRow row;
            fields.str("id", row.id);
            fields.str("representative", row.representative);
            fields.u64("size", row.size);
            fields.str("members", row.members);
            fields.str("components", row.components);
            if (!fields.ok())
                return fail(error, lineno, what);
            log.clusters.push_back(std::move(row));
        } else if (record == "portability") {
            PortabilityRow row;
            fields.str("key", row.key);
            fields.str("origin", row.origin);
            fields.str("variant", row.variant);
            fields.str("config", row.config);
            fields.boolean("reproduced", row.reproduced);
            fields.str("observed", row.observed);
            if (!fields.ok())
                return fail(error, lineno, what);
            log.portability.push_back(std::move(row));
        } else if (record == "poc") {
            PocRow row;
            fields.str("cluster", row.cluster);
            fields.str("key", row.key);
            fields.str("config", row.config);
            fields.str("variant", row.variant);
            fields.str("file", row.file);
            fields.u64("packets_before", row.packets_before);
            fields.u64("packets_after", row.packets_after);
            fields.u64("instrs_before", row.instrs_before);
            fields.u64("instrs_after", row.instrs_after);
            fields.u64("effective_before", row.effective_before);
            fields.u64("effective_after", row.effective_after);
            fields.u64("oracle_calls", row.oracle_calls);
            if (!fields.ok())
                return fail(error, lineno, what);
            log.pocs.push_back(std::move(row));
        } else if (!fields.ok()) {
            return fail(error, lineno, what);
        } else {
            return fail(error, lineno,
                        "unknown record type \"" + record + "\"");
        }
    }
    out = std::move(log);
    return true;
}

std::vector<ReportTable>
buildTriageTables(const TriageLog &log)
{
    std::vector<ReportTable> tables;

    ReportTable clusters;
    clusters.title = "Bug clusters";
    clusters.header = {"cluster", "size", "representative",
                       "components", "members"};
    for (const ClusterRow &row : log.clusters) {
        clusters.rows.push_back({row.id, std::to_string(row.size),
                                 row.representative, row.components,
                                 row.members});
    }
    tables.push_back(std::move(clusters));

    // Pivot: one row per bug in first-appearance order, one column
    // per config in first-appearance order (the writer emits both in
    // canonical order, so the table inherits it).
    std::vector<std::string> configs;
    for (const PortabilityRow &row : log.portability) {
        if (std::find(configs.begin(), configs.end(), row.config) ==
            configs.end()) {
            configs.push_back(row.config);
        }
    }
    ReportTable matrix;
    matrix.title = "Portability matrix";
    matrix.header = {"bug", "origin", "variant"};
    for (const std::string &config : configs)
        matrix.header.push_back(config);
    std::vector<std::string> keys;
    for (const PortabilityRow &row : log.portability) {
        if (std::find(keys.begin(), keys.end(), row.key) ==
            keys.end()) {
            keys.push_back(row.key);
        }
    }
    for (const std::string &key : keys) {
        std::vector<std::string> cells(3 + configs.size(), "-");
        cells[0] = key;
        for (const PortabilityRow &row : log.portability) {
            if (row.key != key)
                continue;
            cells[1] = row.origin;
            cells[2] = row.variant;
            const auto it = std::find(configs.begin(), configs.end(),
                                      row.config);
            const size_t col =
                3 + static_cast<size_t>(it - configs.begin());
            cells[col] = row.reproduced
                             ? "yes"
                             : "no (" + row.observed + ")";
        }
        matrix.rows.push_back(std::move(cells));
    }
    tables.push_back(std::move(matrix));

    ReportTable pocs;
    pocs.title = "Standalone PoCs";
    pocs.header = {"cluster", "file", "config", "variant", "packets",
                   "instrs", "effective_instrs", "oracle_calls",
                   "bug"};
    auto arrow = [](uint64_t before, uint64_t after) {
        return std::to_string(before) + " -> " +
               std::to_string(after);
    };
    for (const PocRow &row : log.pocs) {
        pocs.rows.push_back(
            {row.cluster, row.file, row.config, row.variant,
             arrow(row.packets_before, row.packets_after),
             arrow(row.instrs_before, row.instrs_after),
             arrow(row.effective_before, row.effective_after),
             std::to_string(row.oracle_calls), row.key});
    }
    tables.push_back(std::move(pocs));

    return tables;
}

} // namespace dejavuzz::report
