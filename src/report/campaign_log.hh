/**
 * @file
 * Typed ingestion of DejaVuzz campaign JSONL logs.
 *
 * parseCampaignLog() reads one log emitted by `dejavuzz` (schema:
 * docs/campaign-format.md) into a CampaignLog, rejecting unknown
 * record types, missing or mistyped fields, and negative counters.
 * validateCampaignLog() then cross-checks the invariants that make a
 * log internally consistent — per-worker sums matching summary
 * totals, bug hit counts matching report totals, epoch records
 * matching the summary epoch count — so downstream reporting never
 * aggregates a half-written or hand-edited log.
 */

#ifndef DEJAVUZZ_REPORT_CAMPAIGN_LOG_HH
#define DEJAVUZZ_REPORT_CAMPAIGN_LOG_HH

#include <array>
#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "obs/telemetry.hh"

namespace dejavuzz::report {

/** `type:"worker"` — one worker's rollup. */
struct WorkerRow
{
    uint64_t worker = 0;
    std::string config;
    std::string variant;
    uint64_t iterations = 0;
    uint64_t simulations = 0;
    uint64_t windows = 0;
    uint64_t coverage_points = 0;
    uint64_t seeds_imported = 0;
    uint64_t bugs = 0;
    double active_seconds = 0.0;
};

/** `type:"trigger"` — fleet aggregate for one window kind. */
struct TriggerRow
{
    std::string kind;
    uint64_t windows = 0;
    uint64_t training_overhead = 0;
    uint64_t effective_overhead = 0;
};

/** `type:"epoch"` — fleet-global state at one epoch barrier. */
struct EpochRow
{
    uint64_t epoch = 0;
    uint64_t iterations = 0;
    uint64_t coverage_points = 0;
    uint64_t distinct_bugs = 0;
    uint64_t corpus_size = 0;
    uint64_t batches_stolen = 0; ///< optional; 0 for older logs
    uint64_t steal_idle_ns = 0;  ///< optional; 0 for older logs
    double wall_seconds = 0.0;
};

/** `type:"bug"` — one deduplicated finding. */
struct BugRow
{
    std::string key;
    std::string description;
    uint64_t worker = 0;
    uint64_t epoch = 0;
    uint64_t iteration = 0;
    std::string config;  ///< optional; empty for older logs
    std::string variant; ///< optional; empty for older logs
    uint64_t hits = 0;
};

/**
 * `type:"heartbeat"` — a periodic telemetry snapshot streamed while
 * the campaign ran (docs/campaign-format.md). Field sets are keyed
 * by the obs registry enums so the parser stays in lockstep with the
 * writer. seq, wall_seconds, every counter and every histogram
 * count/sum are cumulative: the validator rejects logs where any of
 * them decreases across consecutive heartbeats. Gauges are
 * last-value samples and may fluctuate.
 */
struct HeartbeatRow
{
    uint64_t seq = 0;
    double wall_seconds = 0.0;
    std::array<uint64_t, obs::kNumCtrs> counters{};
    std::array<uint64_t, obs::kNumGauges> gauges{};
    std::array<uint64_t, obs::kNumHists> hist_count{};
    std::array<uint64_t, obs::kNumHists> hist_sum{};
    uint64_t batch_p50_ns = 0; ///< optional; 0 for older logs
    uint64_t batch_p99_ns = 0; ///< optional; 0 for older logs

    uint64_t counter(obs::Ctr c) const
    {
        return counters[static_cast<unsigned>(c)];
    }
    uint64_t histCount(obs::Hist h) const
    {
        return hist_count[static_cast<unsigned>(h)];
    }
    uint64_t histSum(obs::Hist h) const
    {
        return hist_sum[static_cast<unsigned>(h)];
    }
};

/** `type:"summary"` — campaign totals (exactly one per log). */
struct SummaryRow
{
    uint64_t workers = 0;
    std::string policy;
    uint64_t master_seed = 0;
    std::string templates; ///< optional; empty for older logs
    uint64_t iterations = 0;
    uint64_t simulations = 0;
    uint64_t windows = 0;
    uint64_t coverage_points = 0;
    uint64_t distinct_bugs = 0;
    uint64_t total_reports = 0;
    uint64_t epochs = 0;
    uint64_t corpus_size = 0;
    uint64_t corpus_preloaded = 0; ///< optional; 0 for older logs
    /** Campaign-directory fields; optional, 0 for older logs. */
    uint64_t corpus_minimized = 0;   ///< entries dropped by --minimize
    uint64_t coverage_preloaded = 0; ///< points restored from snapshot
    uint64_t bugs_restored = 0;      ///< distinct records restored
    uint64_t reports_restored = 0;   ///< restored bug hits (excluded
                                     ///< from per-worker sums)
    uint64_t steals = 0;
    /** Scheduler fields; optional, absent in pre-scheduler logs. */
    std::string sched;             ///< "steal" | "barrier" | ""
    uint64_t batch = 0;            ///< iterations per batch
    uint64_t batches = 0;          ///< batches executed
    uint64_t batches_stolen = 0;   ///< executed by a non-owner
    uint64_t steal_idle_ns = 0;    ///< Σ per-thread barrier idle
    /** Robustness fields; optional, 0 for pre-watchdog logs. */
    uint64_t batch_retries = 0;       ///< extra attempts after failure
    uint64_t batch_deadline_kills = 0;///< attempts killed by watchdog
    uint64_t batches_failed = 0;      ///< batches that exhausted retries
    uint64_t quarantined_seeds = 0;   ///< poison seeds pulled from corpus
    uint64_t kinds_disabled = 0;      ///< (config,variant) shut down
    double wall_seconds = 0.0;
    double iters_per_sec = 0.0;
};

/**
 * `type:"trailer"` — the crash-safety record a checkpointed log ends
 * with. Its CRC-32 covers every byte of the log that precedes it;
 * the parser re-computes the checksum as it reads and rejects the log
 * on mismatch, so a torn or bit-flipped checkpoint can never feed
 * the reporting pipeline. Live (non-checkpoint) logs carry none.
 */
struct TrailerRow
{
    uint64_t generation = 0; ///< save generation that wrote the log
    uint64_t bytes = 0;      ///< payload length the CRC covers
    uint32_t crc32 = 0;      ///< CRC-32 of those bytes
};

/** One parsed campaign log. */
struct CampaignLog
{
    std::string name;  ///< display label (normally the file stem)
    std::vector<WorkerRow> workers;
    std::vector<TriggerRow> triggers;
    std::vector<EpochRow> epochs;
    std::vector<BugRow> bugs;
    std::vector<HeartbeatRow> heartbeats;
    SummaryRow summary;
    bool has_trailer = false; ///< log ended with a verified trailer
    TrailerRow trailer;       ///< valid only when has_trailer

    /** Wall seconds of the first epoch whose distinct_bugs > 0, or
     *  a negative value when the campaign found no bug. */
    double timeToFirstBug() const;

    /** Wall seconds of the first epoch whose coverage reached
     *  @p target points, or a negative value when it never did. */
    double timeToCoverage(uint64_t target) const;
};

/**
 * Parse @p is as a campaign JSONL log. Strict: any malformed line,
 * unknown record type, missing/mistyped/negative field, or a log
 * without exactly one summary record fails the parse (diagnostic in
 * @p error when non-null, with a 1-based line number).
 */
bool parseCampaignLog(std::istream &is, const std::string &name,
                      CampaignLog &out, std::string *error = nullptr);

/**
 * Cross-record consistency checks over a parsed log. Returns the
 * list of violated invariants, empty when the log is coherent.
 */
std::vector<std::string> validateCampaignLog(const CampaignLog &log);

} // namespace dejavuzz::report

#endif // DEJAVUZZ_REPORT_CAMPAIGN_LOG_HH
