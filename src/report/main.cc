/**
 * @file
 * The `dejavuzz-report` CLI: multi-campaign JSONL analytics.
 *
 *   dejavuzz-report a.jsonl b.jsonl                 # Markdown report
 *   dejavuzz-report --format csv run.jsonl          # CSV sections
 *   dejavuzz-report --out cmp.md day1.jsonl day2.jsonl
 *   dejavuzz-report --triage day1/triage.jsonl day1/campaign.jsonl
 *   dejavuzz-report --triage day1/triage.jsonl      # triage only
 *
 * Each input is a campaign log written by `dejavuzz` (schema:
 * docs/campaign-format.md). Logs are strictly validated — a
 * malformed or internally inconsistent log aborts with a diagnostic
 * and a non-zero exit — then compared side by side on the paper's
 * evaluation axes (usage and sample output: docs/reporting.md).
 * --triage appends the triage tables (bug clusters, the cross-config
 * portability matrix, PoC shrink accounting) parsed from a
 * triage.jsonl written by `dejavuzz-replay --triage`.
 */

#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "report/campaign_log.hh"
#include "report/report.hh"
#include "report/triage_log.hh"

namespace {

using dejavuzz::report::CampaignLog;
using dejavuzz::report::ReportFormat;

void
usage(const char *argv0)
{
    std::fprintf(stderr,
        "usage: %s [options] [LOG.jsonl ...]\n"
        "\n"
        "  --format F     md | csv (default md)\n"
        "  --out PATH     write the report to a file "
        "(default stdout)\n"
        "  --triage PATH  append triage tables from a triage.jsonl\n"
        "                 (campaign logs become optional)\n"
        "  --help         this text\n",
        argv0);
}

/** Display label: file stem, deduplicated with a #N suffix. */
std::string
labelFor(const std::string &path,
         const std::vector<CampaignLog> &loaded)
{
    std::string stem = path;
    size_t slash = stem.find_last_of('/');
    if (slash != std::string::npos)
        stem = stem.substr(slash + 1);
    size_t dot = stem.find_last_of('.');
    if (dot != std::string::npos && dot > 0)
        stem = stem.substr(0, dot);

    std::string label = stem;
    unsigned suffix = 2;
    for (size_t i = 0; i < loaded.size();) {
        if (loaded[i].name == label) {
            label = stem + "#" + std::to_string(suffix++);
            i = 0;
            continue;
        }
        ++i;
    }
    return label;
}

} // namespace

int
main(int argc, char **argv)
{
    ReportFormat format = ReportFormat::Markdown;
    std::string out_path;
    std::string triage_path;
    std::vector<std::string> inputs;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto value = [&]() -> const char * {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "%s needs a value\n",
                             arg.c_str());
                std::exit(2);
            }
            return argv[++i];
        };

        if (arg == "--help" || arg == "-h") {
            usage(argv[0]);
            return 0;
        } else if (arg == "--format") {
            const std::string fmt = value();
            if (fmt == "md" || fmt == "markdown") {
                format = ReportFormat::Markdown;
            } else if (fmt == "csv") {
                format = ReportFormat::Csv;
            } else {
                std::fprintf(stderr, "bad value for --format\n");
                return 2;
            }
        } else if (arg == "--out") {
            out_path = value();
        } else if (arg == "--triage") {
            triage_path = value();
        } else if (!arg.empty() && arg[0] == '-') {
            std::fprintf(stderr, "unknown option %s\n", arg.c_str());
            usage(argv[0]);
            return 2;
        } else {
            inputs.push_back(arg);
        }
    }

    if (inputs.empty() && triage_path.empty()) {
        std::fprintf(stderr, "no campaign logs given\n");
        usage(argv[0]);
        return 2;
    }

    // Open --out before doing any work, so an unwritable path fails
    // immediately.
    std::ofstream out_file;
    if (!out_path.empty()) {
        out_file.open(out_path, std::ios::out | std::ios::trunc);
        if (!out_file) {
            std::fprintf(stderr, "cannot open --out %s for writing\n",
                         out_path.c_str());
            return 1;
        }
    }

    std::vector<CampaignLog> logs;
    logs.reserve(inputs.size());
    for (const std::string &path : inputs) {
        std::ifstream in(path);
        if (!in) {
            std::fprintf(stderr, "cannot open %s\n", path.c_str());
            return 1;
        }
        CampaignLog log;
        std::string error;
        if (!dejavuzz::report::parseCampaignLog(
                in, labelFor(path, logs), log, &error)) {
            std::fprintf(stderr, "%s\n", error.c_str());
            return 1;
        }
        std::vector<std::string> problems =
            dejavuzz::report::validateCampaignLog(log);
        if (!problems.empty()) {
            for (const auto &problem : problems)
                std::fprintf(stderr, "%s: %s\n", path.c_str(),
                             problem.c_str());
            return 1;
        }
        logs.push_back(std::move(log));
    }

    std::string report;
    if (!logs.empty())
        report = dejavuzz::report::renderComparison(logs, format);

    if (!triage_path.empty()) {
        std::ifstream in(triage_path);
        if (!in) {
            std::fprintf(stderr, "cannot open %s\n",
                         triage_path.c_str());
            return 1;
        }
        dejavuzz::report::TriageLog triage;
        std::string error;
        if (!dejavuzz::report::parseTriageLog(in, triage, &error)) {
            std::fprintf(stderr, "%s: %s\n", triage_path.c_str(),
                         error.c_str());
            return 1;
        }
        const std::string preamble =
            logs.empty() ? "# DejaVuzz bug triage\n" : "";
        report += dejavuzz::report::renderTables(
            dejavuzz::report::buildTriageTables(triage), format,
            preamble);
    }

    if (!out_path.empty()) {
        out_file << report;
        out_file.flush();
        if (!out_file) {
            std::fprintf(stderr, "write to --out %s failed\n",
                         out_path.c_str());
            return 1;
        }
    } else {
        std::cout << report;
    }
    return 0;
}
