#include "report/campaign_log.hh"

#include <cerrno>
#include <cmath>
#include <cstdlib>
#include <istream>

#include "campaign/io_util.hh"
#include "report/json.hh"

namespace dejavuzz::report {

namespace {

/** Field extraction over one parsed line; collects the first error. */
class Fields
{
  public:
    Fields(const JsonObject &obj, std::string &error)
        : obj_(obj), error_(error)
    {}

    bool
    ok() const
    {
        return error_.empty();
    }

    void
    u64(const char *key, uint64_t &out, bool required = true)
    {
        const JsonValue *value = find(key, required);
        if (!value)
            return;
        // Parse from the literal token, not the double: counters
        // like master_seed use the full 64-bit range, which double
        // cannot represent exactly (and an out-of-range
        // double->uint64 cast would be UB).
        bool integral = value->isNumber() && !value->raw.empty();
        for (char c : value->raw) {
            if (c < '0' || c > '9')
                integral = false;
        }
        if (!integral) {
            set(std::string("field \"") + key +
                "\" must be a non-negative integer");
            return;
        }
        errno = 0;
        out = std::strtoull(value->raw.c_str(), nullptr, 10);
        if (errno == ERANGE)
            set(std::string("field \"") + key +
                "\" exceeds the 64-bit range");
    }

    void
    f64(const char *key, double &out, bool required = true)
    {
        const JsonValue *value = find(key, required);
        if (!value)
            return;
        if (!value->isNumber() || value->number < 0.0 ||
            !std::isfinite(value->number)) {
            set(std::string("field \"") + key +
                "\" must be a finite non-negative number");
            return;
        }
        out = value->number;
    }

    void
    str(const char *key, std::string &out, bool required = true)
    {
        const JsonValue *value = find(key, required);
        if (!value)
            return;
        if (!value->isString()) {
            set(std::string("field \"") + key +
                "\" must be a string");
            return;
        }
        out = value->text;
    }

  private:
    const JsonValue *
    find(const char *key, bool required)
    {
        if (!ok())
            return nullptr;
        auto it = obj_.find(key);
        if (it == obj_.end()) {
            if (required)
                set(std::string("missing field \"") + key + "\"");
            return nullptr;
        }
        return &it->second;
    }

    void
    set(const std::string &what)
    {
        if (error_.empty())
            error_ = what;
    }

    const JsonObject &obj_;
    std::string &error_;
};

} // namespace

double
CampaignLog::timeToFirstBug() const
{
    for (const auto &row : epochs) {
        if (row.distinct_bugs > 0)
            return row.wall_seconds;
    }
    return -1.0;
}

double
CampaignLog::timeToCoverage(uint64_t target) const
{
    for (const auto &row : epochs) {
        if (row.coverage_points >= target)
            return row.wall_seconds;
    }
    return -1.0;
}

bool
parseCampaignLog(std::istream &is, const std::string &name,
                 CampaignLog &out, std::string *error)
{
    out = CampaignLog{};
    out.name = name;

    unsigned summaries = 0;
    uint64_t line_no = 0;
    std::string line;
    auto fail = [&](const std::string &what) {
        if (error)
            *error = name + " line " + std::to_string(line_no) +
                     ": " + what;
        return false;
    };

    // Running integrity state: a checkpointed log ends with a
    // trailer record whose CRC-32 covers every byte before it, so
    // the checksum is chained line by line as the log is consumed
    // (getline strips the '\n' each line was written with).
    uint64_t bytes_before = 0;
    uint32_t running_crc = 0;
    auto consume = [&](const std::string &text) {
        running_crc =
            campaign::crc32(text.data(), text.size(), running_crc);
        running_crc = campaign::crc32("\n", 1, running_crc);
        bytes_before += text.size() + 1;
    };

    while (std::getline(is, line)) {
        ++line_no;
        if (line.empty()) {
            consume(line);
            continue;
        }
        if (out.has_trailer)
            return fail("record after the integrity trailer");

        JsonObject obj;
        std::string json_error;
        if (!parseFlatJsonObject(line, obj, &json_error))
            return fail(json_error);

        std::string field_error;
        Fields fields(obj, field_error);
        std::string type;
        fields.str("type", type);
        if (!fields.ok())
            return fail(field_error);

        if (type == "worker") {
            WorkerRow row;
            fields.u64("worker", row.worker);
            fields.str("config", row.config);
            fields.str("variant", row.variant);
            fields.u64("iterations", row.iterations);
            fields.u64("simulations", row.simulations);
            fields.u64("windows", row.windows);
            fields.u64("coverage_points", row.coverage_points);
            fields.u64("seeds_imported", row.seeds_imported);
            fields.u64("bugs", row.bugs);
            fields.f64("active_seconds", row.active_seconds);
            if (!fields.ok())
                return fail(field_error);
            out.workers.push_back(std::move(row));
        } else if (type == "trigger") {
            TriggerRow row;
            fields.str("kind", row.kind);
            fields.u64("windows", row.windows);
            fields.u64("training_overhead", row.training_overhead);
            fields.u64("effective_overhead",
                       row.effective_overhead);
            if (!fields.ok())
                return fail(field_error);
            out.triggers.push_back(std::move(row));
        } else if (type == "epoch") {
            EpochRow row;
            fields.u64("epoch", row.epoch);
            fields.u64("iterations", row.iterations);
            fields.u64("coverage_points", row.coverage_points);
            fields.u64("distinct_bugs", row.distinct_bugs);
            fields.u64("corpus_size", row.corpus_size);
            fields.u64("batches_stolen", row.batches_stolen,
                       /*required=*/false);
            fields.u64("steal_idle_ns", row.steal_idle_ns,
                       /*required=*/false);
            fields.f64("wall_seconds", row.wall_seconds);
            if (!fields.ok())
                return fail(field_error);
            out.epochs.push_back(row);
        } else if (type == "bug") {
            BugRow row;
            fields.str("key", row.key);
            fields.str("description", row.description);
            fields.u64("worker", row.worker);
            fields.u64("epoch", row.epoch);
            fields.u64("iteration", row.iteration);
            fields.str("config", row.config, /*required=*/false);
            fields.str("variant", row.variant, /*required=*/false);
            fields.u64("hits", row.hits);
            if (!fields.ok())
                return fail(field_error);
            out.bugs.push_back(std::move(row));
        } else if (type == "heartbeat") {
            HeartbeatRow row;
            fields.u64("seq", row.seq);
            fields.f64("wall_seconds", row.wall_seconds);
            for (unsigned i = 0; i < obs::kNumCtrs; ++i)
                fields.u64(obs::ctrName(static_cast<obs::Ctr>(i)),
                           row.counters[i]);
            for (unsigned i = 0; i < obs::kNumGauges; ++i)
                fields.u64(obs::gaugeName(static_cast<obs::Gauge>(i)),
                           row.gauges[i]);
            for (unsigned i = 0; i < obs::kNumHists; ++i) {
                const std::string name =
                    obs::histName(static_cast<obs::Hist>(i));
                fields.u64((name + "_count").c_str(),
                           row.hist_count[i]);
                fields.u64((name + "_sum").c_str(), row.hist_sum[i]);
            }
            fields.u64("batch_p50_ns", row.batch_p50_ns,
                       /*required=*/false);
            fields.u64("batch_p99_ns", row.batch_p99_ns,
                       /*required=*/false);
            if (!fields.ok())
                return fail(field_error);
            out.heartbeats.push_back(row);
        } else if (type == "summary") {
            SummaryRow row;
            fields.u64("workers", row.workers);
            fields.str("policy", row.policy);
            fields.u64("master_seed", row.master_seed);
            fields.str("templates", row.templates,
                       /*required=*/false);
            fields.u64("iterations", row.iterations);
            fields.u64("simulations", row.simulations);
            fields.u64("windows", row.windows);
            fields.u64("coverage_points", row.coverage_points);
            fields.u64("distinct_bugs", row.distinct_bugs);
            fields.u64("total_reports", row.total_reports);
            fields.u64("epochs", row.epochs);
            fields.u64("corpus_size", row.corpus_size);
            fields.u64("corpus_preloaded", row.corpus_preloaded,
                       /*required=*/false);
            fields.u64("corpus_minimized", row.corpus_minimized,
                       /*required=*/false);
            fields.u64("coverage_preloaded", row.coverage_preloaded,
                       /*required=*/false);
            fields.u64("bugs_restored", row.bugs_restored,
                       /*required=*/false);
            fields.u64("reports_restored", row.reports_restored,
                       /*required=*/false);
            fields.u64("steals", row.steals);
            fields.str("sched", row.sched, /*required=*/false);
            fields.u64("batch", row.batch, /*required=*/false);
            fields.u64("batches", row.batches, /*required=*/false);
            fields.u64("batches_stolen", row.batches_stolen,
                       /*required=*/false);
            fields.u64("batch_retries", row.batch_retries,
                       /*required=*/false);
            fields.u64("batch_deadline_kills",
                       row.batch_deadline_kills,
                       /*required=*/false);
            fields.u64("batches_failed", row.batches_failed,
                       /*required=*/false);
            fields.u64("quarantined_seeds", row.quarantined_seeds,
                       /*required=*/false);
            fields.u64("kinds_disabled", row.kinds_disabled,
                       /*required=*/false);
            fields.u64("steal_idle_ns", row.steal_idle_ns,
                       /*required=*/false);
            fields.f64("wall_seconds", row.wall_seconds);
            fields.f64("iters_per_sec", row.iters_per_sec);
            if (!fields.ok())
                return fail(field_error);
            out.summary = std::move(row);
            ++summaries;
        } else if (type == "trailer") {
            TrailerRow row;
            uint64_t crc_field = 0;
            fields.u64("generation", row.generation);
            fields.u64("bytes", row.bytes);
            fields.u64("crc32", crc_field);
            if (!fields.ok())
                return fail(field_error);
            if (crc_field > 0xffffffffull)
                return fail(
                    "field \"crc32\" exceeds the 32-bit range");
            row.crc32 = static_cast<uint32_t>(crc_field);
            if (row.bytes != bytes_before)
                return fail(
                    "trailer covers " + std::to_string(row.bytes) +
                    " bytes but " + std::to_string(bytes_before) +
                    " precede it (torn log)");
            if (row.crc32 != running_crc)
                return fail("trailer CRC mismatch (corrupt log)");
            out.trailer = row;
            out.has_trailer = true;
        } else {
            return fail("unknown record type \"" + type + "\"");
        }
        consume(line);
    }

    if (summaries != 1)
        return fail("expected exactly one summary record, found " +
                    std::to_string(summaries));
    return true;
}

std::vector<std::string>
validateCampaignLog(const CampaignLog &log)
{
    std::vector<std::string> problems;
    auto check = [&](bool condition, const std::string &what) {
        if (!condition)
            problems.push_back(what);
    };
    auto sum = [&](auto field) {
        uint64_t total = 0;
        for (const auto &row : log.workers)
            total += row.*field;
        return total;
    };

    const SummaryRow &s = log.summary;
    check(!log.workers.empty(), "log has no worker records");
    check(s.workers == log.workers.size(),
          "summary.workers does not match the worker record count");
    check(sum(&WorkerRow::iterations) == s.iterations,
          "per-worker iterations do not sum to summary.iterations");
    check(sum(&WorkerRow::simulations) == s.simulations,
          "per-worker simulations do not sum to "
          "summary.simulations");
    check(sum(&WorkerRow::windows) == s.windows,
          "per-worker windows do not sum to summary.windows");
    // A resumed campaign's workers report only the resumed half;
    // the restored hits make up the difference (0 on fresh runs).
    check(sum(&WorkerRow::bugs) + s.reports_restored ==
              s.total_reports,
          "per-worker bug reports plus summary.reports_restored do "
          "not sum to summary.total_reports");
    check(s.reports_restored <= s.total_reports,
          "summary.reports_restored exceeds summary.total_reports");
    check(s.bugs_restored <= s.distinct_bugs,
          "summary.bugs_restored exceeds summary.distinct_bugs");

    uint64_t trigger_windows = 0;
    for (const auto &row : log.triggers)
        trigger_windows += row.windows;
    check(trigger_windows == s.windows,
          "per-trigger windows do not sum to summary.windows");

    check(log.bugs.size() == s.distinct_bugs,
          "bug record count does not match summary.distinct_bugs");
    uint64_t hits = 0;
    for (const auto &row : log.bugs)
        hits += row.hits;
    check(hits == s.total_reports,
          "bug hits do not sum to summary.total_reports");

    // Logs from schema revisions predating the epoch record type
    // carry none at all; only a *partial* epoch series is corrupt.
    check(log.epochs.empty() || log.epochs.size() == s.epochs,
          "epoch record count does not match summary.epochs");
    for (size_t i = 0; i < log.epochs.size(); ++i) {
        if (log.epochs[i].epoch != i) {
            problems.push_back(
                "epoch records are not consecutive from 0");
            break;
        }
    }
    check(s.batches_stolen <= s.batches,
          "summary.batches_stolen exceeds summary.batches");
    // Robustness accounting: every failed batch was still counted in
    // summary.batches, each watchdog kill consumed one attempt
    // (batches + batch_retries bounds the attempt total), and a seed
    // only reaches quarantine when the batch replaying it failed.
    check(s.batches_failed <= s.batches,
          "summary.batches_failed exceeds summary.batches");
    check(s.batch_deadline_kills <= s.batches + s.batch_retries,
          "summary.batch_deadline_kills exceeds total batch "
          "attempts");
    check(s.quarantined_seeds == 0 || s.batches_failed > 0,
          "summary.quarantined_seeds is non-zero with no failed "
          "batches");
    check(s.kinds_disabled <= s.workers,
          "summary.kinds_disabled exceeds summary.workers");
    if (!log.epochs.empty()) {
        uint64_t stolen = 0;
        for (const auto &row : log.epochs)
            stolen += row.batches_stolen;
        check(stolen == s.batches_stolen,
              "per-epoch batches_stolen do not sum to "
              "summary.batches_stolen");
        const EpochRow &last = log.epochs.back();
        check(last.iterations == s.iterations,
              "final epoch iterations do not match "
              "summary.iterations");
        check(last.coverage_points == s.coverage_points,
              "final epoch coverage does not match "
              "summary.coverage_points");
        check(last.distinct_bugs == s.distinct_bugs,
              "final epoch distinct_bugs does not match "
              "summary.distinct_bugs");
    }

    // Heartbeats are cumulative snapshots: seq strictly increases,
    // and wall_seconds, every counter and every histogram total is
    // non-decreasing in emission order. Gauges (corpus size etc.)
    // are last-value samples and legitimately fluctuate.
    for (size_t i = 0; i < log.heartbeats.size(); ++i) {
        const HeartbeatRow &hb = log.heartbeats[i];
        check(hb.counter(obs::Ctr::StealHits) <=
                  hb.counter(obs::Ctr::StealAttempts),
              "heartbeat steal_hits exceeds steal_attempts");
        if (i == 0)
            continue;
        const HeartbeatRow &prev = log.heartbeats[i - 1];
        check(hb.seq > prev.seq,
              "heartbeat seq values are not strictly increasing");
        check(hb.wall_seconds >= prev.wall_seconds,
              "heartbeat wall_seconds regresses");
        for (unsigned c = 0; c < obs::kNumCtrs; ++c) {
            check(hb.counters[c] >= prev.counters[c],
                  std::string("heartbeat counter \"") +
                      obs::ctrName(static_cast<obs::Ctr>(c)) +
                      "\" decreases");
        }
        for (unsigned h = 0; h < obs::kNumHists; ++h) {
            const char *name =
                obs::histName(static_cast<obs::Hist>(h));
            check(hb.hist_count[h] >= prev.hist_count[h],
                  std::string("heartbeat histogram \"") + name +
                      "\" count decreases");
            check(hb.hist_sum[h] >= prev.hist_sum[h],
                  std::string("heartbeat histogram \"") + name +
                      "\" sum decreases");
        }
        if (problems.size() > 16)
            break; // a corrupt log flood helps nobody
    }
    return problems;
}

} // namespace dejavuzz::report
