/**
 * @file
 * Cross-campaign comparison reports over parsed campaign logs.
 *
 * One renderComparison() call turns N CampaignLogs into a single
 * report with the paper's evaluation axes side by side: campaign
 * overview, per-config/variant totals (Table 2), per-trigger
 * training-overhead aggregates (Table 3), a deduplicated
 * cross-campaign bug matrix (Table 5), epoch-resolution coverage
 * growth (Fig 7), and first-to-coverage / time-to-first-bug deltas
 * against the first (baseline) campaign.
 */

#ifndef DEJAVUZZ_REPORT_REPORT_HH
#define DEJAVUZZ_REPORT_REPORT_HH

#include <string>
#include <vector>

#include "report/campaign_log.hh"

namespace dejavuzz::report {

enum class ReportFormat : uint8_t {
    Markdown, ///< one Markdown document with one section per table
    Csv,      ///< the same tables as `# section:`-delimited CSV
};

/** One rendered comparison table. */
struct ReportTable
{
    std::string title;
    std::vector<std::string> header;
    std::vector<std::vector<std::string>> rows;
};

/** Build the comparison tables for @p logs (at least one). */
std::vector<ReportTable>
buildComparisonTables(const std::vector<CampaignLog> &logs);

/**
 * Render @p tables in @p format. @p preamble is raw Markdown emitted
 * before the first table (typically the document heading; ignored
 * for CSV). Empty tables are skipped in both formats.
 */
std::string renderTables(const std::vector<ReportTable> &tables,
                         ReportFormat format,
                         const std::string &preamble = {});

/** Render the full comparison report for @p logs. */
std::string renderComparison(const std::vector<CampaignLog> &logs,
                             ReportFormat format);

} // namespace dejavuzz::report

#endif // DEJAVUZZ_REPORT_REPORT_HH
