#include "report/report.hh"

#include <algorithm>
#include <cstdio>
#include <limits>
#include <map>
#include <set>
#include <sstream>

#include "util/logging.hh"

namespace dejavuzz::report {

namespace {

std::string
fmtU64(uint64_t value)
{
    return std::to_string(value);
}

std::string
fmtF64(double value)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.2f", value);
    return buf;
}

/** Seconds, or "n/a" for the negative never-happened sentinel. */
std::string
fmtSeconds(double value)
{
    return value < 0.0 ? "n/a" : fmtF64(value) + " s";
}

/** Signed delta in seconds vs a baseline, "n/a" when either side
 *  never reached the milestone. */
std::string
fmtDelta(double value, double baseline)
{
    if (value < 0.0 || baseline < 0.0)
        return "n/a";
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%+.2f s", value - baseline);
    return buf;
}

std::string
fmtRatio(uint64_t numerator, uint64_t denominator)
{
    if (denominator == 0)
        return "n/a";
    return fmtF64(static_cast<double>(numerator) /
                  static_cast<double>(denominator));
}

ReportTable
overviewTable(const std::vector<CampaignLog> &logs)
{
    ReportTable table;
    table.title = "Campaign overview";
    table.header = {"campaign", "policy", "workers", "master_seed",
                    "iterations", "wall_s", "iters_per_s",
                    "coverage_points", "distinct_bugs",
                    "corpus_size", "corpus_preloaded",
                    "corpus_minimized", "coverage_preloaded",
                    "bugs_restored", "steals"};
    for (const auto &log : logs) {
        const SummaryRow &s = log.summary;
        table.rows.push_back({log.name, s.policy,
                              fmtU64(s.workers),
                              fmtU64(s.master_seed),
                              fmtU64(s.iterations),
                              fmtF64(s.wall_seconds),
                              fmtF64(s.iters_per_sec),
                              fmtU64(s.coverage_points),
                              fmtU64(s.distinct_bugs),
                              fmtU64(s.corpus_size),
                              fmtU64(s.corpus_preloaded),
                              fmtU64(s.corpus_minimized),
                              fmtU64(s.coverage_preloaded),
                              fmtU64(s.bugs_restored),
                              fmtU64(s.steals)});
    }
    return table;
}

ReportTable
schedulerTable(const std::vector<CampaignLog> &logs)
{
    // Scheduler occupancy: how much of the fleet's time the
    // work-stealing scheduler kept busy. Pre-scheduler logs carry no
    // batch fields and contribute no rows (an all-empty table is
    // skipped by the renderers).
    ReportTable table;
    table.title = "Scheduler occupancy";
    table.header = {"campaign", "sched", "batch", "batches",
                    "batches_stolen", "stolen_pct", "steal_idle_s",
                    "idle_per_worker_s"};
    for (const auto &log : logs) {
        const SummaryRow &s = log.summary;
        if (s.batches == 0)
            continue;
        const double idle_s =
            static_cast<double>(s.steal_idle_ns) / 1e9;
        const double per_worker =
            s.workers > 0
                ? idle_s / static_cast<double>(s.workers)
                : idle_s;
        char pct[32];
        std::snprintf(pct, sizeof(pct), "%.1f%%",
                      100.0 *
                          static_cast<double>(s.batches_stolen) /
                          static_cast<double>(s.batches));
        table.rows.push_back(
            {log.name, s.sched.empty() ? "?" : s.sched,
             fmtU64(s.batch), fmtU64(s.batches),
             fmtU64(s.batches_stolen), pct, fmtF64(idle_s),
             fmtF64(per_worker)});
    }
    return table;
}

ReportTable
robustnessTable(const std::vector<CampaignLog> &logs)
{
    // Fault-tolerance ledger: how often batches were retried, killed
    // by the watchdog, or written off; how many seeds were
    // quarantined and kinds disabled; plus the injected-fault and
    // checkpoint counters from the final heartbeat. Logs that never
    // exercised the machinery contribute no rows (an all-empty table
    // is skipped by the renderers).
    ReportTable table;
    table.title = "Robustness (watchdog / quarantine / checkpoints)";
    table.header = {"campaign", "batch_retries", "deadline_kills",
                    "batches_failed", "quarantined_seeds",
                    "kinds_disabled", "faults_injected",
                    "checkpoint_generations"};
    for (const auto &log : logs) {
        const SummaryRow &s = log.summary;
        uint64_t faults = 0;
        uint64_t checkpoints = 0;
        if (!log.heartbeats.empty()) {
            const HeartbeatRow &hb = log.heartbeats.back();
            faults = hb.counter(obs::Ctr::FaultsInjected);
            checkpoints =
                hb.counter(obs::Ctr::CheckpointGenerations);
        }
        if (s.batch_retries == 0 && s.batch_deadline_kills == 0 &&
            s.batches_failed == 0 && s.quarantined_seeds == 0 &&
            s.kinds_disabled == 0 && faults == 0 &&
            checkpoints == 0) {
            continue;
        }
        table.rows.push_back({log.name, fmtU64(s.batch_retries),
                              fmtU64(s.batch_deadline_kills),
                              fmtU64(s.batches_failed),
                              fmtU64(s.quarantined_seeds),
                              fmtU64(s.kinds_disabled),
                              fmtU64(faults), fmtU64(checkpoints)});
    }
    return table;
}

ReportTable
heartbeatTimingTable(const std::vector<CampaignLog> &logs)
{
    // Timing breakdown from the final heartbeat of each log: where
    // the campaign's cycles went (phase spans, the moduleTaintStats
    // share of Phase 2, rollback cost) and how occupied the worker
    // fleet was. Logs without heartbeat records contribute no rows
    // (an all-empty table is skipped by the renderers).
    ReportTable table;
    table.title = "Timing breakdown (heartbeats)";
    table.header = {"campaign", "wall_s", "occupancy_pct",
                    "phase1_s", "phase2_s", "phase3_s",
                    "module_taint_s", "module_taint_pct_phase2",
                    "rollbacks", "rollback_s", "steal_hit_pct"};
    auto pct = [](double num, double den) -> std::string {
        if (den <= 0.0)
            return "n/a";
        char buf[32];
        std::snprintf(buf, sizeof(buf), "%.1f%%",
                      100.0 * num / den);
        return buf;
    };
    for (const auto &log : logs) {
        if (log.heartbeats.empty())
            continue;
        const HeartbeatRow &hb = log.heartbeats.back();
        auto seconds = [&](obs::Hist h) {
            return static_cast<double>(hb.histSum(h)) / 1e9;
        };
        const double batch_s = seconds(obs::Hist::BatchNs);
        const double phase2_s = seconds(obs::Hist::Phase2Ns);
        const double taint_s = seconds(obs::Hist::ModuleTaintNs);
        const uint64_t workers =
            hb.gauges[static_cast<unsigned>(obs::Gauge::Workers)];
        const double fleet_s =
            hb.wall_seconds * static_cast<double>(workers);
        table.rows.push_back(
            {log.name, fmtF64(hb.wall_seconds),
             pct(batch_s, fleet_s),
             fmtF64(seconds(obs::Hist::Phase1Ns)), fmtF64(phase2_s),
             fmtF64(seconds(obs::Hist::Phase3Ns)), fmtF64(taint_s),
             pct(taint_s, phase2_s),
             fmtU64(hb.counter(obs::Ctr::Rollbacks)),
             fmtF64(seconds(obs::Hist::RollbackNs)),
             pct(static_cast<double>(
                     hb.counter(obs::Ctr::StealHits)),
                 static_cast<double>(
                     hb.counter(obs::Ctr::StealAttempts)))});
    }
    return table;
}

ReportTable
configTable(const std::vector<CampaignLog> &logs)
{
    ReportTable table;
    table.title = "Per-config totals (Table 2 axes)";
    table.header = {"campaign", "config", "variant", "workers",
                    "iterations", "simulations", "windows",
                    "worker_coverage", "seeds_imported",
                    "bug_reports", "active_s"};
    for (const auto &log : logs) {
        // Group worker rows by (config, variant), preserving first
        // appearance order.
        std::vector<std::pair<std::string, std::string>> order;
        std::map<std::pair<std::string, std::string>, WorkerRow>
            groups;
        std::map<std::pair<std::string, std::string>, uint64_t>
            counts;
        for (const auto &w : log.workers) {
            auto key = std::make_pair(w.config, w.variant);
            auto [it, inserted] = groups.try_emplace(key);
            if (inserted) {
                order.push_back(key);
                it->second.config = w.config;
                it->second.variant = w.variant;
            }
            it->second.iterations += w.iterations;
            it->second.simulations += w.simulations;
            it->second.windows += w.windows;
            it->second.coverage_points += w.coverage_points;
            it->second.seeds_imported += w.seeds_imported;
            it->second.bugs += w.bugs;
            it->second.active_seconds += w.active_seconds;
            ++counts[key];
        }
        for (const auto &key : order) {
            const WorkerRow &g = groups[key];
            table.rows.push_back({log.name, g.config, g.variant,
                                  fmtU64(counts[key]),
                                  fmtU64(g.iterations),
                                  fmtU64(g.simulations),
                                  fmtU64(g.windows),
                                  fmtU64(g.coverage_points),
                                  fmtU64(g.seeds_imported),
                                  fmtU64(g.bugs),
                                  fmtF64(g.active_seconds)});
        }
    }
    return table;
}

ReportTable
triggerTable(const std::vector<CampaignLog> &logs)
{
    ReportTable table;
    table.title = "Transient-window training overhead "
                  "(Table 3 axes)";
    table.header = {"campaign", "kind", "windows",
                    "training_overhead", "effective_overhead",
                    "TO_per_window", "ETO_per_window"};
    for (const auto &log : logs) {
        for (const auto &t : log.triggers) {
            table.rows.push_back(
                {log.name, t.kind, fmtU64(t.windows),
                 fmtU64(t.training_overhead),
                 fmtU64(t.effective_overhead),
                 fmtRatio(t.training_overhead, t.windows),
                 fmtRatio(t.effective_overhead, t.windows)});
        }
    }
    return table;
}

ReportTable
bugMatrixTable(const std::vector<CampaignLog> &logs)
{
    ReportTable table;
    table.title = "Cross-campaign bug matrix (Table 5 axes)";
    table.header = {"bug"};
    for (const auto &log : logs)
        table.header.push_back(log.name);
    table.header.push_back("description");

    // Union of dedup keys, in key order; per campaign a cell shows
    // hits plus first-discovery provenance, or "-" when unseen.
    std::set<std::string> keys;
    for (const auto &log : logs) {
        for (const auto &bug : log.bugs)
            keys.insert(bug.key);
    }
    for (const auto &key : keys) {
        std::vector<std::string> row{key};
        std::string description;
        for (const auto &log : logs) {
            auto it = std::find_if(
                log.bugs.begin(), log.bugs.end(),
                [&](const BugRow &bug) { return bug.key == key; });
            if (it == log.bugs.end()) {
                row.push_back("-");
                continue;
            }
            if (description.empty())
                description = it->description;
            row.push_back(fmtU64(it->hits) + " hits (w" +
                          fmtU64(it->worker) + " e" +
                          fmtU64(it->epoch) + ")");
        }
        row.push_back(description);
        table.rows.push_back(std::move(row));
    }
    return table;
}

ReportTable
coverageGrowthTable(const std::vector<CampaignLog> &logs)
{
    ReportTable table;
    table.title = "Coverage growth (Fig 7 axes)";
    table.header = {"campaign", "epoch", "iterations",
                    "coverage_points", "distinct_bugs",
                    "corpus_size", "wall_s"};
    for (const auto &log : logs) {
        for (const auto &e : log.epochs) {
            table.rows.push_back({log.name, fmtU64(e.epoch),
                                  fmtU64(e.iterations),
                                  fmtU64(e.coverage_points),
                                  fmtU64(e.distinct_bugs),
                                  fmtU64(e.corpus_size),
                                  fmtF64(e.wall_seconds)});
        }
    }
    return table;
}

ReportTable
deltaTable(const std::vector<CampaignLog> &logs)
{
    // The common coverage milestone is the weakest campaign's final
    // coverage, so every campaign that finished has a
    // first-to-coverage time for it.
    uint64_t common = std::numeric_limits<uint64_t>::max();
    for (const auto &log : logs)
        common = std::min(common, log.summary.coverage_points);

    const CampaignLog &base = logs.front();
    const double base_cov = base.timeToCoverage(common);
    const double base_bug = base.timeToFirstBug();

    ReportTable table;
    table.title = "First-to-coverage / time-to-first-bug (vs " +
                  base.name + ", coverage milestone " +
                  fmtU64(common) + " points)";
    table.header = {"campaign", "final_coverage",
                    "time_to_milestone", "milestone_delta",
                    "time_to_first_bug", "first_bug_delta"};
    for (const auto &log : logs) {
        const double cov = log.timeToCoverage(common);
        const double bug = log.timeToFirstBug();
        table.rows.push_back(
            {log.name, fmtU64(log.summary.coverage_points),
             fmtSeconds(cov), fmtDelta(cov, base_cov),
             fmtSeconds(bug), fmtDelta(bug, base_bug)});
    }
    return table;
}

std::string
mdEscape(const std::string &text)
{
    std::string out;
    out.reserve(text.size());
    for (char c : text) {
        if (c == '|')
            out += "\\|";
        else if (c == '\n')
            out += ' ';
        else
            out += c;
    }
    return out;
}

std::string
renderMarkdown(const std::vector<ReportTable> &tables,
               const std::string &preamble)
{
    std::ostringstream os;
    os << preamble;
    for (const auto &table : tables) {
        if (table.rows.empty())
            continue;
        os << "\n## " << table.title << "\n\n";
        os << "|";
        for (const auto &cell : table.header)
            os << " " << mdEscape(cell) << " |";
        os << "\n|";
        for (size_t i = 0; i < table.header.size(); ++i)
            os << " --- |";
        os << "\n";
        for (const auto &row : table.rows) {
            os << "|";
            for (const auto &cell : row)
                os << " " << mdEscape(cell) << " |";
            os << "\n";
        }
    }
    return os.str();
}

std::string
csvEscape(const std::string &text)
{
    if (text.find_first_of(",\"\n") == std::string::npos)
        return text;
    std::string out = "\"";
    for (char c : text) {
        if (c == '"')
            out += "\"\"";
        else
            out += c;
    }
    out += '"';
    return out;
}

std::string
renderCsv(const std::vector<ReportTable> &tables)
{
    std::ostringstream os;
    for (const auto &table : tables) {
        if (table.rows.empty())
            continue;
        os << "# section: " << table.title << "\n";
        for (size_t i = 0; i < table.header.size(); ++i)
            os << (i ? "," : "") << csvEscape(table.header[i]);
        os << "\n";
        for (const auto &row : table.rows) {
            for (size_t i = 0; i < row.size(); ++i)
                os << (i ? "," : "") << csvEscape(row[i]);
            os << "\n";
        }
        os << "\n";
    }
    return os.str();
}

} // namespace

std::vector<ReportTable>
buildComparisonTables(const std::vector<CampaignLog> &logs)
{
    dv_assert(!logs.empty());
    std::vector<ReportTable> tables;
    tables.push_back(overviewTable(logs));
    tables.push_back(schedulerTable(logs));
    tables.push_back(robustnessTable(logs));
    tables.push_back(heartbeatTimingTable(logs));
    tables.push_back(configTable(logs));
    tables.push_back(triggerTable(logs));
    tables.push_back(bugMatrixTable(logs));
    tables.push_back(coverageGrowthTable(logs));
    tables.push_back(deltaTable(logs));
    return tables;
}

std::string
renderTables(const std::vector<ReportTable> &tables,
             ReportFormat format, const std::string &preamble)
{
    return format == ReportFormat::Markdown
               ? renderMarkdown(tables, preamble)
               : renderCsv(tables);
}

std::string
renderComparison(const std::vector<CampaignLog> &logs,
                 ReportFormat format)
{
    std::vector<ReportTable> tables = buildComparisonTables(logs);
    std::ostringstream preamble;
    preamble << "# DejaVuzz campaign comparison\n\n";
    preamble << "Campaigns: ";
    for (size_t i = 0; i < logs.size(); ++i) {
        if (i)
            preamble << ", ";
        preamble << "`" << logs[i].name << "`";
    }
    preamble << "\n";
    return renderTables(tables, format, preamble.str());
}

} // namespace dejavuzz::report
