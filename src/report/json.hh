/**
 * @file
 * Minimal JSON parsing for the DejaVuzz campaign log.
 *
 * Every record writeCampaignJsonl() emits is a flat JSON object whose
 * values are strings, numbers, booleans or null — no arrays, no
 * nesting (docs/campaign-format.md). This parser supports exactly
 * that subset and rejects everything else, which doubles as schema
 * enforcement: a nested value in a campaign log is a malformed log.
 */

#ifndef DEJAVUZZ_REPORT_JSON_HH
#define DEJAVUZZ_REPORT_JSON_HH

#include <cstdint>
#include <map>
#include <string>
#include <string_view>

namespace dejavuzz::report {

/** One scalar JSON value. */
struct JsonValue
{
    enum class Kind : uint8_t { Null, Bool, Number, String };

    Kind kind = Kind::Null;
    bool boolean = false;
    double number = 0.0;
    std::string text;
    /** For numbers: the literal token, so integer consumers can
     *  reparse at full 64-bit precision (double only carries 53
     *  bits). */
    std::string raw;

    bool isNumber() const { return kind == Kind::Number; }
    bool isString() const { return kind == Kind::String; }
};

using JsonObject = std::map<std::string, JsonValue>;

/**
 * Parse one line of the campaign log — a flat JSON object with
 * scalar values. Returns false (with a diagnostic in @p error when
 * non-null) on any syntax error, nested value, duplicate key, or
 * trailing garbage.
 */
bool parseFlatJsonObject(std::string_view line, JsonObject &out,
                         std::string *error = nullptr);

} // namespace dejavuzz::report

#endif // DEJAVUZZ_REPORT_JSON_HH
