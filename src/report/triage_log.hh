/**
 * @file
 * Typed ingestion of `triage.jsonl` (docs/campaign-format.md).
 *
 * A triage log is the flat-JSONL artifact `dejavuzz-replay --triage`
 * (or `dejavuzz --triage`) drops next to a campaign directory's
 * snapshot: one `record:"cluster"` line per signature cluster, one
 * `record:"portability"` line per (bug, core-config) replay cell and
 * one `record:"poc"` line per emitted minimized PoC.
 * parseTriageLog() validates the schema strictly — unknown record
 * types, missing fields and mistyped values are errors, exactly like
 * the campaign-log parser — and buildTriageTables() turns the result
 * into report tables: the cluster inventory, the bug × config
 * portability pivot and the PoC shrink accounting.
 */

#ifndef DEJAVUZZ_REPORT_TRIAGE_LOG_HH
#define DEJAVUZZ_REPORT_TRIAGE_LOG_HH

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "report/report.hh"

namespace dejavuzz::report {

/** `record:"cluster"` — one signature cluster. */
struct ClusterRow
{
    std::string id;
    std::string representative;
    uint64_t size = 0;
    std::string members;    ///< ";"-joined member dedup keys
    std::string components; ///< ";"-joined union component set
};

/** `record:"portability"` — one (bug, config) replay cell. */
struct PortabilityRow
{
    std::string key;
    std::string origin;
    std::string variant;
    std::string config;
    bool reproduced = false;
    std::string observed;
};

/** `record:"poc"` — one emitted PoC and its shrink accounting. */
struct PocRow
{
    std::string cluster;
    std::string key;
    std::string config;
    std::string variant;
    std::string file;
    uint64_t packets_before = 0;
    uint64_t packets_after = 0;
    uint64_t instrs_before = 0;
    uint64_t instrs_after = 0;
    uint64_t effective_before = 0;
    uint64_t effective_after = 0;
    uint64_t oracle_calls = 0;
};

/** One parsed triage log. */
struct TriageLog
{
    std::vector<ClusterRow> clusters;
    std::vector<PortabilityRow> portability;
    std::vector<PocRow> pocs;
};

/**
 * Strictly parse a triage.jsonl stream. Returns false (diagnostic in
 * @p error when non-null) on any malformed line, unknown record type
 * or missing/mistyped field.
 */
bool parseTriageLog(std::istream &is, TriageLog &out,
                    std::string *error = nullptr);

/**
 * Build the triage report tables: "Bug clusters", the
 * "Portability matrix" pivot (one row per bug, one column per core
 * config seen in the log) and "Standalone PoCs". Tables with no rows
 * are skipped by the renderers.
 */
std::vector<ReportTable> buildTriageTables(const TriageLog &log);

} // namespace dejavuzz::report

#endif // DEJAVUZZ_REPORT_TRIAGE_LOG_HH
