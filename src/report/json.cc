#include "report/json.hh"

#include <cctype>
#include <cstdlib>

namespace dejavuzz::report {

namespace {

class Cursor
{
  public:
    explicit Cursor(std::string_view text) : text_(text) {}

    bool
    done() const
    {
        return pos_ >= text_.size();
    }

    char
    peek() const
    {
        return done() ? '\0' : text_[pos_];
    }

    char
    take()
    {
        return done() ? '\0' : text_[pos_++];
    }

    void
    skipSpace()
    {
        while (!done() && std::isspace(
                              static_cast<unsigned char>(peek()))) {
            ++pos_;
        }
    }

    bool
    consume(char c)
    {
        if (peek() != c)
            return false;
        ++pos_;
        return true;
    }

    bool
    consumeWord(std::string_view word)
    {
        if (text_.substr(pos_, word.size()) != word)
            return false;
        pos_ += word.size();
        return true;
    }

    std::string_view
    rest() const
    {
        return text_.substr(pos_);
    }

    size_t
    pos() const
    {
        return pos_;
    }

  private:
    std::string_view text_;
    size_t pos_ = 0;
};

bool
fail(std::string *error, const std::string &what, const Cursor &cur)
{
    if (error)
        *error = what + " at offset " + std::to_string(cur.pos());
    return false;
}

/** Append @p cp as UTF-8 (sufficient for \uXXXX escapes; the log
 *  writer only ever emits escapes below U+0020). */
void
appendUtf8(std::string &out, uint32_t cp)
{
    if (cp < 0x80) {
        out += static_cast<char>(cp);
    } else if (cp < 0x800) {
        out += static_cast<char>(0xc0 | (cp >> 6));
        out += static_cast<char>(0x80 | (cp & 0x3f));
    } else {
        out += static_cast<char>(0xe0 | (cp >> 12));
        out += static_cast<char>(0x80 | ((cp >> 6) & 0x3f));
        out += static_cast<char>(0x80 | (cp & 0x3f));
    }
}

bool
parseString(Cursor &cur, std::string &out, std::string *error)
{
    if (!cur.consume('"'))
        return fail(error, "expected '\"'", cur);
    out.clear();
    for (;;) {
        if (cur.done())
            return fail(error, "unterminated string", cur);
        char c = cur.take();
        if (c == '"')
            return true;
        if (c != '\\') {
            out += c;
            continue;
        }
        char esc = cur.take();
        switch (esc) {
          case '"': out += '"'; break;
          case '\\': out += '\\'; break;
          case '/': out += '/'; break;
          case 'b': out += '\b'; break;
          case 'f': out += '\f'; break;
          case 'n': out += '\n'; break;
          case 'r': out += '\r'; break;
          case 't': out += '\t'; break;
          case 'u': {
            uint32_t cp = 0;
            for (int i = 0; i < 4; ++i) {
                char h = cur.take();
                cp <<= 4;
                if (h >= '0' && h <= '9')
                    cp |= static_cast<uint32_t>(h - '0');
                else if (h >= 'a' && h <= 'f')
                    cp |= static_cast<uint32_t>(h - 'a' + 10);
                else if (h >= 'A' && h <= 'F')
                    cp |= static_cast<uint32_t>(h - 'A' + 10);
                else
                    return fail(error, "bad \\u escape", cur);
            }
            appendUtf8(out, cp);
            break;
          }
          default:
            return fail(error, "bad escape", cur);
        }
    }
}

bool
parseValue(Cursor &cur, JsonValue &out, std::string *error)
{
    cur.skipSpace();
    char c = cur.peek();
    if (c == '"') {
        out.kind = JsonValue::Kind::String;
        return parseString(cur, out.text, error);
    }
    if (c == '{' || c == '[')
        return fail(error, "nested values are not part of the "
                           "campaign-log schema", cur);
    if (cur.consumeWord("true")) {
        out.kind = JsonValue::Kind::Bool;
        out.boolean = true;
        return true;
    }
    if (cur.consumeWord("false")) {
        out.kind = JsonValue::Kind::Bool;
        out.boolean = false;
        return true;
    }
    if (cur.consumeWord("null")) {
        out.kind = JsonValue::Kind::Null;
        return true;
    }
    // Number: match the strict JSON grammar
    // (-?digits[.digits][(e|E)[+-]digits]) ourselves — strtod alone
    // would also accept nan/inf/hex floats, which are not JSON.
    const std::string_view rest = cur.rest();
    size_t len = 0;
    auto digits = [&]() {
        size_t start = len;
        while (len < rest.size() && rest[len] >= '0' &&
               rest[len] <= '9') {
            ++len;
        }
        return len > start;
    };
    if (len < rest.size() && rest[len] == '-')
        ++len;
    if (!digits())
        return fail(error, "expected a JSON value", cur);
    if (len < rest.size() && rest[len] == '.') {
        ++len;
        if (!digits())
            return fail(error, "bad number", cur);
    }
    if (len < rest.size() && (rest[len] == 'e' ||
                              rest[len] == 'E')) {
        ++len;
        if (len < rest.size() && (rest[len] == '+' ||
                                  rest[len] == '-')) {
            ++len;
        }
        if (!digits())
            return fail(error, "bad number", cur);
    }
    out.kind = JsonValue::Kind::Number;
    out.raw = std::string(rest.substr(0, len));
    out.number = std::strtod(out.raw.c_str(), nullptr);
    for (size_t i = 0; i < len; ++i)
        cur.take();
    return true;
}

} // namespace

bool
parseFlatJsonObject(std::string_view line, JsonObject &out,
                    std::string *error)
{
    out.clear();
    Cursor cur(line);
    cur.skipSpace();
    if (!cur.consume('{'))
        return fail(error, "expected '{'", cur);
    cur.skipSpace();
    if (!cur.consume('}')) {
        for (;;) {
            cur.skipSpace();
            std::string key;
            if (!parseString(cur, key, error))
                return false;
            cur.skipSpace();
            if (!cur.consume(':'))
                return fail(error, "expected ':'", cur);
            JsonValue value;
            if (!parseValue(cur, value, error))
                return false;
            if (!out.emplace(key, std::move(value)).second)
                return fail(error, "duplicate key \"" + key + "\"",
                            cur);
            cur.skipSpace();
            if (cur.consume(','))
                continue;
            if (cur.consume('}'))
                break;
            return fail(error, "expected ',' or '}'", cur);
        }
    }
    cur.skipSpace();
    if (!cur.done())
        return fail(error, "trailing characters after object", cur);
    return true;
}

} // namespace dejavuzz::report
